package exec

import (
	"fmt"
	"sync"
	"time"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// Measured is the Executor that runs the pure-Go BLAS kernels and times
// them with the monotonic clock. It follows the paper's protocol: before
// each repetition the cache is flushed by streaming through a buffer
// larger than any realistic LLC; within a repetition the calls run
// back-to-back so inter-kernel cache effects are present.
//
// Operand contents never influence BLAS timing (dense unstructured
// inputs), so inputs are filled once per algorithm from a deterministic
// stream.
type Measured struct {
	// FlushBytes is the size of the cache-flushing buffer. The default
	// (32 MiB) exceeds typical LLCs.
	FlushBytes int

	flushBuf []float64
	fillRng  *xrand.Rand

	peakOnce sync.Once
	peak     float64
}

// NewMeasured returns a measured executor with default settings.
func NewMeasured() *Measured {
	return &Measured{FlushBytes: 32 << 20, fillRng: xrand.New(0xfeed)}
}

// flushCache streams writes through the flush buffer, evicting cached
// operand data (the paper flushes the cache before each repetition). The
// buffer is re-sized whenever FlushBytes changes, so adjusting the field
// after the first flush takes effect.
func (e *Measured) flushCache() {
	n := e.FlushBytes / 8
	if n < 1024 {
		n = 1024
	}
	if len(e.flushBuf) != n {
		e.flushBuf = make([]float64, n)
	}
	for i := range e.flushBuf {
		e.flushBuf[i] += 1
	}
}

// materialise allocates and fills every operand of the algorithm.
// Inputs get random contents (SPD inputs get a well-conditioned SPD
// matrix so in-place Cholesky factorisations succeed); temporaries and
// the output are zeroed.
func (e *Measured) materialise(alg *expr.Algorithm) map[string]*mat.Dense {
	ops := make(map[string]*mat.Dense, len(alg.Shapes))
	inputs := make(map[string]bool, len(alg.Inputs))
	for _, id := range alg.Inputs {
		inputs[id] = true
	}
	spd := make(map[string]bool, len(alg.SPDInputs))
	for _, id := range alg.SPDInputs {
		spd[id] = true
	}
	for id, sh := range alg.Shapes {
		var m *mat.Dense
		switch {
		case spd[id]:
			m = mat.NewSPDRandom(sh.Rows, e.fillRng)
		case inputs[id]:
			m = mat.NewRandom(sh.Rows, sh.Cols, e.fillRng)
		default:
			m = mat.New(sh.Rows, sh.Cols)
		}
		ops[id] = m
	}
	return ops
}

// Dispatch executes a single call on the operand map using the pure-Go
// BLAS kernels. Symmetric kernels use the lower triangle, matching the
// SYRK outputs produced here. It is exported so tests and examples can
// evaluate algorithms for correctness (see EvaluateAlgorithm).
func Dispatch(call kernels.Call, ops map[string]*mat.Dense) {
	switch call.Kind {
	case kernels.Gemm:
		blas.Gemm(call.TransA, call.TransB, 1, ops[call.In[0]], ops[call.In[1]], 0, ops[call.Out])
	case kernels.Syrk:
		blas.Syrk(mat.Lower, 1, ops[call.In[0]], 0, ops[call.Out])
	case kernels.Symm:
		blas.Symm(mat.Lower, 1, ops[call.In[0]], ops[call.In[1]], 0, ops[call.Out])
	case kernels.Tri2Full:
		blas.Tri2Full(mat.Lower, ops[call.Out])
	case kernels.Potrf:
		if err := blas.Potrf(ops[call.Out]); err != nil {
			panic(fmt.Sprintf("exec: %v (operand %q must be SPD)", err, call.Out))
		}
	case kernels.Trsm:
		blas.Trsm(mat.Lower, call.TransA, 1, ops[call.In[0]], ops[call.Out])
	case kernels.AddSym:
		blas.AddSym(mat.Lower, ops[call.Out], ops[call.In[1]])
	default:
		panic(fmt.Sprintf("exec: dispatch of unknown kind %v", call.Kind))
	}
}

// EvaluateAlgorithm runs the algorithm's calls on the provided input
// operands and returns the final result. It allocates temporaries and the
// output from the algorithm's shape table. This is the correctness path:
// all algorithms of an expression must produce (numerically) the same
// result.
func EvaluateAlgorithm(alg *expr.Algorithm, inputs map[string]*mat.Dense) *mat.Dense {
	ops := make(map[string]*mat.Dense, len(alg.Shapes))
	for id, sh := range alg.Shapes {
		if in, ok := inputs[id]; ok {
			if in.Rows != sh.Rows || in.Cols != sh.Cols {
				panic(fmt.Sprintf("exec: input %q is %dx%d, algorithm expects %dx%d",
					id, in.Rows, in.Cols, sh.Rows, sh.Cols))
			}
			ops[id] = in
			continue
		}
		ops[id] = mat.New(sh.Rows, sh.Cols)
	}
	for _, call := range alg.Calls {
		Dispatch(call, ops)
	}
	return ops[alg.Output]
}

// TimeAlgorithm implements Executor.
func (e *Measured) TimeAlgorithm(alg *expr.Algorithm, rep uint64) []float64 {
	ops := e.materialise(alg)
	e.flushCache()
	times := make([]float64, len(alg.Calls))
	for i, call := range alg.Calls {
		start := time.Now()
		Dispatch(call, ops)
		times[i] = time.Since(start).Seconds()
	}
	return times
}

// TimeCallCold implements Executor: the call runs on freshly allocated
// operands after a cache flush.
func (e *Measured) TimeCallCold(call kernels.Call, rep uint64) float64 {
	ops := operandsForCall(call, e.fillRng)
	e.flushCache()
	start := time.Now()
	Dispatch(call, ops)
	return time.Since(start).Seconds()
}

// operandsForCall allocates the minimal operand set for one call.
func operandsForCall(call kernels.Call, rng *xrand.Rand) map[string]*mat.Dense {
	ops := make(map[string]*mat.Dense, 3)
	alloc := func(id string, r, c int) {
		if _, ok := ops[id]; !ok {
			ops[id] = mat.NewRandom(r, c, rng)
		}
	}
	switch call.Kind {
	case kernels.Gemm:
		ar, ac := call.M, call.K
		if call.TransA {
			ar, ac = call.K, call.M
		}
		br, bc := call.K, call.N
		if call.TransB {
			br, bc = call.N, call.K
		}
		alloc(call.In[0], ar, ac)
		alloc(call.In[1], br, bc)
	case kernels.Syrk:
		alloc(call.In[0], call.M, call.K)
	case kernels.Symm:
		alloc(call.In[0], call.M, call.M)
		alloc(call.In[1], call.M, call.N)
	case kernels.Tri2Full:
		// In == Out; handled below.
	case kernels.Potrf:
		// The factorisation runs in place on an SPD operand.
		ops[call.Out] = mat.NewSPDRandom(call.M, rng)
	case kernels.Trsm:
		// L must be a usable triangular factor: diagonally dominant.
		l := mat.NewRandom(call.M, call.M, rng)
		for i := 0; i < call.M; i++ {
			l.Set(i, i, 4+rng.Float64())
		}
		ops[call.In[0]] = l
	case kernels.AddSym:
		ops[call.In[1]] = mat.NewRandom(call.M, call.M, rng)
	default:
		panic(fmt.Sprintf("exec: operands for unknown kind %v", call.Kind))
	}
	if _, ok := ops[call.Out]; !ok {
		ops[call.Out] = mat.NewRandom(call.M, call.N, rng)
	}
	return ops
}

// Peak implements Executor: an estimate of the machine's attainable FLOP
// rate, measured once from square GEMM runs through the shared benchmark
// harness (see BenchCall). Efficiencies reported by the measured backend
// are relative to this estimate.
func (e *Measured) Peak() float64 {
	e.peakOnce.Do(func() {
		rng := xrand.New(0xbeef)
		best := 0.0
		for _, s := range []int{192, 320} {
			res := BenchCall(kernels.NewGemm(s, s, s, "A", "B", "C", false, false), 3, rng)
			if f := res.BestGFlops * 1e9; f > best {
				best = f
			}
		}
		e.peak = best
	})
	return e.peak
}

// Name implements Executor.
func (e *Measured) Name() string { return "measured/pure-go-blas" }
