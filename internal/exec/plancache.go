package exec

// This file implements the execution layer of the engine's cache
// hierarchy: a bounded LRU of compiled plans. It replaces the measured
// executor's former single-entry plan slots, so repeated queries across
// many (algorithm, instance) pairs — the serving workload — reuse
// compiled plans instead of recompiling per switch. Whole-algorithm
// plans are keyed by the bound *expr.Algorithm (the binding layer
// memoises bound sets, so the pointer identifies the (algorithm,
// instance) pair); single-call plans are keyed by the call's MemoKey.
// Both lookups are allocation-free, preserving the zero-alloc timing
// repetition invariant.

import (
	"sync"

	"lamb/internal/cache"
	"lamb/internal/expr"
	"lamb/internal/kernels"
)

// Plan-cache defaults. Plans own their operand arenas, so entry counts
// bound memory: paper-box instances reach 1200² operands (~10 MB per
// plan), which is why the defaults are small. Engines serving many
// concurrent expressions pass larger caps via NewPlanCache.
const (
	// DefaultAlgPlanEntries bounds the whole-algorithm plan cache of a
	// standalone Measured executor.
	DefaultAlgPlanEntries = 8
	// DefaultCallPlanEntries bounds the single-call plan cache (the
	// profile-measurement and Experiment 3 path).
	DefaultCallPlanEntries = 8
	// DefaultBatchPlanEntries bounds the fused batch-plan cache. Batch
	// plans exist only in the small-instance regime (FuseWidth caps the
	// slab size), so entries are cheap relative to whole-algorithm plans.
	DefaultBatchPlanEntries = 8
)

// batchKey identifies a fused batch plan: the bound algorithm plus the
// fuse width it was compiled for.
type batchKey struct {
	alg   *expr.Algorithm
	count int
}

// PlanCache memoises compiled execution plans behind a mutex. It is
// safe for concurrent use, though the plans it returns are not — the
// owner serialises execution (Measured always has; the engine holds its
// execution lock across timing runs).
type PlanCache struct {
	mu      sync.Mutex
	algs    *cache.LRU[*expr.Algorithm, *Plan]
	calls   *cache.LRU[kernels.Key, *Plan]
	batches *cache.LRU[batchKey, *BatchPlan]
}

// NewPlanCache returns a plan cache bounded to algEntries
// whole-algorithm plans and callEntries single-call plans (the fused
// batch-plan cache is bounded to DefaultBatchPlanEntries).
func NewPlanCache(algEntries, callEntries int) *PlanCache {
	return &PlanCache{
		algs:    cache.NewLRU[*expr.Algorithm, *Plan](algEntries),
		calls:   cache.NewLRU[kernels.Key, *Plan](callEntries),
		batches: cache.NewLRU[batchKey, *BatchPlan](DefaultBatchPlanEntries),
	}
}

// Plan returns the compiled plan for alg, compiling on first sight. A
// hit performs no heap allocations.
func (c *PlanCache) Plan(alg *expr.Algorithm) (*Plan, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.algs.Get(alg); ok {
		return p, nil
	}
	p, err := CompilePlan(alg)
	if err != nil {
		return nil, err
	}
	c.algs.Put(alg, p)
	return p, nil
}

// CallPlan returns the compiled single-call plan for call, compiling on
// first sight. Calls with equal MemoKeys share a plan (operand IDs do
// not affect performance). A hit performs no heap allocations.
func (c *PlanCache) CallPlan(call kernels.Call) (*Plan, error) {
	key := call.MemoKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.calls.Get(key); ok {
		return p, nil
	}
	p, err := CompileCallPlan(call)
	if err != nil {
		return nil, err
	}
	c.calls.Put(key, p)
	return p, nil
}

// BatchPlan returns the fused batch plan for (alg, count), compiling on
// first sight. A hit performs no heap allocations.
func (c *PlanCache) BatchPlan(alg *expr.Algorithm, count int) (*BatchPlan, error) {
	key := batchKey{alg: alg, count: count}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.batches.Get(key); ok {
		return p, nil
	}
	p, err := CompileBatchPlan(alg, count)
	if err != nil {
		return nil, err
	}
	c.batches.Put(key, p)
	return p, nil
}

// Stats returns the counters of the algorithm-plan and call-plan LRUs.
func (c *PlanCache) Stats() (algs, calls cache.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.algs.Stats(), c.calls.Stats()
}

// BatchStats returns the counters of the fused batch-plan LRU.
func (c *PlanCache) BatchStats() cache.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches.Stats()
}
