package exec

import (
	"context"
	"testing"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/machine"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// TestBatchPlanMatchesSequential pins the tentpole equivalence: a fused
// batch execution produces bitwise-identical results to running the
// single-instance plan once per instance from the same fill stream, for
// every algorithm of every registered expression at a random small
// instance — at blas worker caps 1, 2, and 4, so the parallel batched
// drivers are held to the same bitwise standard as the serial ones, and
// at a batch wider than one fused chunk (72 > 64), so the chunked
// regime is covered too.
func TestBatchPlanMatchesSequential(t *testing.T) {
	defer blas.SetMaxWorkers(blas.SetMaxWorkers(0))
	for _, workers := range []int{1, 2, 4} {
		blas.SetMaxWorkers(workers)
		rng := xrand.New(0xba7c4)
		count := 3
		if workers > 1 {
			count = 72 // wider than one chunk: exercises partitioning + chunk sweep
		}
		for _, name := range expr.Names() {
			ex, err := expr.Lookup(name)
			if err != nil {
				t.Fatalf("lookup %q: %v", name, err)
			}
			inst := make(expr.Instance, ex.Arity())
			for i := range inst {
				inst[i] = 5 + rng.Intn(28)
			}
			algs := ex.Algorithms(inst)
			for i := range algs {
				alg := &algs[i]
				bp, err := CompileBatchPlan(alg, count)
				if err != nil {
					t.Fatalf("%s/%s %v: CompileBatchPlan: %v", name, alg.Name, inst, err)
				}
				sp, err := CompilePlan(alg)
				if err != nil {
					t.Fatalf("%s/%s: CompilePlan: %v", name, alg.Name, err)
				}
				fused, seq := xrand.New(0xf111), xrand.New(0xf111)
				bp.FillInputs(fused)
				bp.Execute()
				for inst := 0; inst < count; inst++ {
					sp.FillInputs(seq)
					sp.Execute()
					if !mat.Equal(sp.Output(), bp.Output(inst)) {
						t.Errorf("%s/%s %v workers=%d: fused instance %d differs from sequential execution",
							name, alg.Name, inst, workers, inst)
					}
				}
			}
		}
	}
}

// TestMixedBatchPlanMatchesSequential pins the heterogeneous
// equivalence property: a mixed batch (one expression, one algorithm
// family, instances of different shapes padded to a common stride)
// produces bitwise-identical per-instance results to compiling and
// executing each instance's single plan from the same fill stream, for
// every algorithm of every registered expression.
func TestMixedBatchPlanMatchesSequential(t *testing.T) {
	rng := xrand.New(0x3417ed)
	const count = 5
	for _, name := range expr.Names() {
		ex, err := expr.Lookup(name)
		if err != nil {
			t.Fatalf("lookup %q: %v", name, err)
		}
		// Bind the same expression at count different small instances.
		sets := make([][]expr.Algorithm, count)
		for j := range sets {
			inst := make(expr.Instance, ex.Arity())
			for i := range inst {
				inst[i] = 5 + rng.Intn(28)
			}
			sets[j] = ex.Algorithms(inst)
		}
		for ai := range sets[0] {
			mixed := make([]*expr.Algorithm, count)
			for j := range mixed {
				mixed[j] = &sets[j][ai]
			}
			mp, err := CompileBatchPlanMixed(mixed)
			if err != nil {
				t.Fatalf("%s alg %d: CompileBatchPlanMixed: %v", name, ai, err)
			}
			if mp.Stride()%batchAlign != 0 {
				t.Errorf("%s alg %d: mixed stride %d not %d-aligned", name, ai, mp.Stride(), batchAlign)
			}
			fused, seq := xrand.New(0x5eed5), xrand.New(0x5eed5)
			mp.FillInputs(fused)
			mp.Execute()
			for j := 0; j < count; j++ {
				sp, err := CompilePlan(mixed[j])
				if err != nil {
					t.Fatalf("%s alg %d inst %d: CompilePlan: %v", name, ai, j, err)
				}
				sp.FillInputs(seq)
				sp.Execute()
				if !mat.Equal(sp.Output(), mp.Output(j)) {
					t.Errorf("%s alg %d: mixed instance %d differs from sequential execution", name, ai, j)
				}
			}
		}
	}
}

// TestMixedBatchPlanRejectsForeignStructure checks the mixed compiler's
// gate: algorithms with different call structures cannot share a plan.
func TestMixedBatchPlanRejectsForeignStructure(t *testing.T) {
	a := expr.NewAATB().Algorithms(expr.Instance{8, 8, 8})
	b := expr.NewLstSq().Algorithms(expr.Instance{16, 8, 4})
	if _, err := CompileBatchPlanMixed([]*expr.Algorithm{&a[0], &b[0]}); err == nil {
		t.Error("mixed plan accepted algorithms of different expressions")
	}
	if len(a) > 1 {
		if _, err := CompileBatchPlanMixed([]*expr.Algorithm{&a[0], &a[1]}); err == nil {
			t.Error("mixed plan accepted two different algorithms of one expression")
		}
	}
}

// TestBatchPlanFillMatchesSequentialStream pins the fill-stream
// contract: BatchPlan.FillInputs consumes the deterministic stream in
// the same order as count consecutive Plan.FillInputs calls, so fused
// and sequential measurements see identical operand contents.
func TestBatchPlanFillMatchesSequentialStream(t *testing.T) {
	algs := expr.NewLstSq().Algorithms(expr.Instance{32, 16, 8})
	alg := &algs[0]
	const count = 4
	bp, err := CompileBatchPlan(alg, count)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := CompilePlan(alg)
	if err != nil {
		t.Fatal(err)
	}
	fused, seq := xrand.New(0xabc), xrand.New(0xabc)
	bp.FillInputs(fused)
	for inst := 0; inst < count; inst++ {
		sp.FillInputs(seq)
		for _, id := range alg.Inputs {
			if !mat.Equal(sp.Operand(id), bp.Operand(inst, id)) {
				t.Errorf("input %q of instance %d differs from the sequential fill stream", id, inst)
			}
		}
	}
}

// TestBatchPlanArenaLayout checks the slab geometry: cache-line-aligned
// instance stride, arena covering all instances, and operands of
// adjacent instances exactly one stride apart.
func TestBatchPlanArenaLayout(t *testing.T) {
	algs := expr.NewAATB().Algorithms(expr.Instance{24, 16, 8})
	alg := &algs[0]
	const count = 5
	bp, err := CompileBatchPlan(alg, count)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Count() != count {
		t.Errorf("Count() = %d, want %d", bp.Count(), count)
	}
	if bp.Stride()%batchAlign != 0 {
		t.Errorf("stride %d not %d-aligned", bp.Stride(), batchAlign)
	}
	if got, want := bp.ArenaLen(), bp.Stride()*count; got != want {
		t.Errorf("ArenaLen() = %d, want stride·count = %d", got, want)
	}
	sp, err := CompilePlan(alg)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Stride() < sp.ArenaLen() {
		t.Errorf("stride %d smaller than single-instance arena %d", bp.Stride(), sp.ArenaLen())
	}
	for _, id := range alg.Inputs {
		o0, o1 := bp.Operand(0, id), bp.Operand(1, id)
		o0.Data[0] = 42
		if o1.Data[0] == 42 {
			t.Fatalf("operand %q of instances 0 and 1 alias", id)
		}
		o0.Data[0] = 0
	}
}

// TestMeasuredTimeAlgorithmBatchZeroAllocs extends the zero-alloc
// guarantee to the fused batched path: after the batch plan is compiled
// (first repetition), a fused batch repetition — refill all instances,
// flush, execute every batched call — performs zero heap allocations,
// serial and through the parallel tier alike (the persistent workers
// and pooled job descriptors keep the parallel dispatch alloc-free).
func TestMeasuredTimeAlgorithmBatchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	defer blas.SetMaxWorkers(blas.SetMaxWorkers(1))
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	for _, workers := range []int{1, 2} {
		blas.SetMaxWorkers(workers)
		for _, tc := range []struct {
			name  string
			algs  []expr.Algorithm
			count int
		}{
			{"chain", expr.NewChainABCD().Algorithms(expr.Instance{24, 16, 20, 12, 8}), 8},
			{"aatb", expr.NewAATB().Algorithms(expr.Instance{24, 16, 8}), 16},
			{"lstsq", expr.NewLstSq().Algorithms(expr.Instance{32, 16, 8}), 8},
		} {
			for i := range tc.algs {
				alg := &tc.algs[i]
				e.TimeAlgorithmBatch(alg, tc.count, 0) // compile the plan, warm pools + workers
				allocs := testing.AllocsPerRun(10, func() {
					e.TimeAlgorithmBatch(alg, tc.count, 1)
				})
				if allocs != 0 {
					t.Errorf("workers=%d %s algorithm %d (%s): %v allocs per fused batch repetition, want 0",
						workers, tc.name, alg.Index, alg.Name, allocs)
				}
			}
		}
	}
}

// TestMeasuredFuseWidth checks the fused-regime gate: small instances
// fuse one full chunk (64) and span the chunk cap in total (512), huge
// instances don't fuse at all, and the chunk width always divides the
// budget consistently with the total width.
func TestMeasuredFuseWidth(t *testing.T) {
	e := NewMeasured()
	small := expr.NewAATB().Algorithms(expr.Instance{8, 8, 8})
	if w := e.FuseChunk(&small[0]); w != 64 {
		t.Errorf("FuseChunk(8-dim aatb) = %d, want the 64 chunk cap", w)
	}
	if w := e.FuseWidth(&small[0]); w != 64*maxFusedChunks {
		t.Errorf("FuseWidth(8-dim aatb) = %d, want chunk·maxFusedChunks = %d", w, 64*maxFusedChunks)
	}
	big := expr.NewAATB().Algorithms(expr.Instance{1200, 1200, 1200})
	if w := e.FuseChunk(&big[0]); w != 0 {
		t.Errorf("FuseChunk(1200-dim aatb) = %d, want 0 (outside the fused regime)", w)
	}
	if w := e.FuseWidth(&big[0]); w != 0 {
		t.Errorf("FuseWidth(1200-dim aatb) = %d, want 0 (outside the fused regime)", w)
	}
}

// TestMeasureAlgorithmBatchCtx checks the fused measurement protocol:
// per-instance scaling, context cancellation between repetitions, and
// rejection of executors without a batched path.
func TestMeasureAlgorithmBatchCtx(t *testing.T) {
	e := NewMeasured()
	e.FlushBytes = 1 << 20
	timer := &Timer{Exec: e, Reps: 2}
	algs := expr.NewAATB().Algorithms(expr.Instance{16, 8, 8})
	alg := &algs[0]
	m, err := timer.MeasureAlgorithmBatchCtx(context.Background(), alg, 8)
	if err != nil {
		t.Fatalf("MeasureAlgorithmBatchCtx: %v", err)
	}
	if m.Total <= 0 || len(m.PerCall) != len(alg.Calls) {
		t.Errorf("measurement %+v malformed", m)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := timer.MeasureAlgorithmBatchCtx(ctx, alg, 8); err == nil {
		t.Error("cancelled context not honoured")
	}
	simTimer := &Timer{Exec: NewSimulated(machine.NewDefault()), Reps: 2}
	if _, err := simTimer.MeasureAlgorithmBatchCtx(context.Background(), alg, 8); err == nil {
		t.Error("simulated executor accepted a fused batch measurement")
	}
}
