package exec

// Heterogeneous fused batch plans: one expression, one algorithm
// family, N instances of *different* shapes in one slab arena. The
// homogeneous BatchPlan requires every instance to share a layout so
// the batched BLAS drivers can stride uniformly through the slab; a
// mixed plan instead lays each instance out with its own compiled
// layout, pads every slab to the largest per-instance arena (rounded to
// the 64-byte batch alignment) so all instances sit at one common
// stride, and binds each instance's calls to the ordinary serial
// kernels. Execution is still step-major — call s runs across all
// instances before call s+1 — so the per-dispatch fixed costs the
// fused path exists to amortise (plan bookkeeping, validation, pool
// round-trips hoisted by the kernels' pooling) are paid once per batch,
// and fills consume the deterministic stream instance-major, exactly
// the stream N consecutive single-instance plans would consume.
//
// Because every instance executes the exact serial kernel code a
// single-instance Plan would run, on the same data, mixed results are
// bitwise identical to per-instance sequential execution by
// construction.

import (
	"fmt"

	"lamb/internal/expr"
	"lamb/internal/mat"
	"lamb/internal/xrand"
)

// MixedBatchPlan is a compiled algorithm fused over instances of mixed
// shapes. Compile once, execute many times; like Plan it is not safe
// for concurrent use.
type MixedBatchPlan struct {
	algs   []*expr.Algorithm
	stride int // common instance slab stride in float64s
	arena  []float64
	// Per-instance state: each instance has its own operand index,
	// headers (true shapes, laid out by its own layout within its padded
	// slab), fill recipe, and output slot.
	index   []map[string]int
	insts   [][]mat.Dense
	fills   [][]planFill
	outputs []int
	// steps[s][i] runs call s of instance i on the serial kernels.
	steps      [][]func()
	spdScratch []float64
}

// CompileBatchPlanMixed lowers one algorithm family bound at mixed
// instances into a heterogeneous fused plan. Every element must be the
// same algorithm of the same expression (same call structure: count,
// kinds, transposes, operand IDs) bound at its own instance; shapes may
// differ freely. Compilation allocates everything an execution will
// ever need, so Execute is allocation-free afterwards.
func CompileBatchPlanMixed(algs []*expr.Algorithm) (*MixedBatchPlan, error) {
	if len(algs) < 1 {
		return nil, fmt.Errorf("exec: mixed batch plan needs at least one instance")
	}
	ref := algs[0]
	for i, alg := range algs[1:] {
		if err := sameCallStructure(ref, alg); err != nil {
			return nil, fmt.Errorf("exec: mixed batch instance %d: %w", i+1, err)
		}
	}
	count := len(algs)
	lays := make([]*planLayout, count)
	stride, scratchLen := 0, 0
	for i, alg := range algs {
		lay, err := compileLayout(alg)
		if err != nil {
			return nil, err
		}
		lays[i] = lay
		s := (lay.arenaLen + batchAlign - 1) &^ (batchAlign - 1)
		if s > stride {
			stride = s
		}
		if lay.scratchLen > scratchLen {
			scratchLen = lay.scratchLen
		}
	}
	if stride == 0 {
		stride = batchAlign
	}
	p := &MixedBatchPlan{
		algs:       algs,
		stride:     stride,
		arena:      make([]float64, stride*count),
		index:      make([]map[string]int, count),
		insts:      make([][]mat.Dense, count),
		fills:      make([][]planFill, count),
		outputs:    make([]int, count),
		spdScratch: make([]float64, scratchLen),
	}
	nsteps := len(ref.Calls)
	p.steps = make([][]func(), nsteps)
	for s := range p.steps {
		p.steps[s] = make([]func(), count)
	}
	for inst, alg := range algs {
		lay := lays[inst]
		hs := make([]mat.Dense, len(lay.order))
		for i, id := range lay.order {
			sh := alg.Shapes[id]
			off := inst*stride + lay.offsets[i]
			hs[i] = mat.Dense{
				Rows:   sh.Rows,
				Cols:   sh.Cols,
				Stride: max(sh.Rows, 1),
				Data:   p.arena[off : off+lay.sizes[i]],
			}
		}
		p.index[inst] = lay.index
		p.insts[inst] = hs
		p.fills[inst] = lay.fills
		p.outputs[inst] = lay.output
		for s, c := range alg.Calls {
			run, err := bindCall(c, func(id string) *mat.Dense { return &hs[lay.index[id]] })
			if err != nil {
				return nil, err
			}
			p.steps[s][inst] = run
		}
	}
	return p, nil
}

// sameCallStructure checks that two bound algorithms share one call
// structure — the same algorithm of the same expression at different
// instances. Kinds, transposes, and operand IDs must agree; dimensions
// are the instances' own business.
func sameCallStructure(a, b *expr.Algorithm) error {
	if len(a.Calls) != len(b.Calls) {
		return fmt.Errorf("call counts differ (%d vs %d)", len(a.Calls), len(b.Calls))
	}
	for s := range a.Calls {
		ca, cb := a.Calls[s], b.Calls[s]
		if ca.Kind != cb.Kind || ca.TransA != cb.TransA || ca.TransB != cb.TransB ||
			ca.Out != cb.Out || len(ca.In) != len(cb.In) {
			return fmt.Errorf("call %d differs (%s vs %s)", s, ca.String(), cb.String())
		}
		for i := range ca.In {
			if ca.In[i] != cb.In[i] {
				return fmt.Errorf("call %d operand %d differs (%s vs %s)", s, i, ca.In[i], cb.In[i])
			}
		}
	}
	return nil
}

// FillInputs refills every instance's input operands in place,
// instance-major, with each instance's true shapes — exactly the stream
// order N consecutive single-instance Plan.FillInputs calls would
// consume. It performs no heap allocations.
func (p *MixedBatchPlan) FillInputs(rng *xrand.Rand) {
	for inst := range p.insts {
		for _, f := range p.fills[inst] {
			fillOperand(&p.insts[inst][f.idx], f.kind, p.spdScratch, rng)
		}
	}
}

// Execute runs the fused call sequence once, step-major: call s runs
// across all instances before call s+1. Instances are independent, so
// this ordering is observationally identical to running each instance's
// plan to completion. It performs no heap allocations.
func (p *MixedBatchPlan) Execute() {
	for s := range p.steps {
		for _, run := range p.steps[s] {
			run()
		}
	}
}

// Count returns the number of fused instances.
func (p *MixedBatchPlan) Count() int { return len(p.algs) }

// Stride returns the common per-instance slab stride in float64s.
func (p *MixedBatchPlan) Stride() int { return p.stride }

// ArenaLen returns the length in float64s of the whole batch arena.
func (p *MixedBatchPlan) ArenaLen() int { return len(p.arena) }

// Alg returns the algorithm instance inst was compiled from.
func (p *MixedBatchPlan) Alg(inst int) *expr.Algorithm { return p.algs[inst] }

// SetInput copies src into instance inst's named operand slot. It panics
// if the operand is unknown or the shapes disagree.
func (p *MixedBatchPlan) SetInput(inst int, id string, src *mat.Dense) {
	i, ok := p.index[inst][id]
	if !ok {
		panic(fmt.Sprintf("exec: mixed batch plan has no operand %q", id))
	}
	dst := &p.insts[inst][i]
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		panic(fmt.Sprintf("exec: input %q is %dx%d, algorithm expects %dx%d",
			id, src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	mat.Copy(dst, src)
}

// Operand returns instance inst's arena-backed matrix for the given
// operand ID, or nil if that instance has no such operand.
func (p *MixedBatchPlan) Operand(inst int, id string) *mat.Dense {
	if i, ok := p.index[inst][id]; ok {
		return &p.insts[inst][i]
	}
	return nil
}

// Output returns instance inst's arena-backed result operand.
func (p *MixedBatchPlan) Output(inst int) *mat.Dense {
	return &p.insts[inst][p.outputs[inst]]
}

// Inputs returns the declared input IDs of instance inst's algorithm.
func (p *MixedBatchPlan) Inputs(inst int) []string { return p.algs[inst].Inputs }
