package exec

import (
	"encoding/json"
	"testing"

	"lamb/internal/kernels"
	"lamb/internal/xrand"
)

func TestBenchCallGemm(t *testing.T) {
	res := BenchCall(kernels.NewGemm(64, 64, 64, "A", "B", "C", false, false), 3, xrand.New(1))
	if res.Kernel != "gemm" || res.M != 64 || res.Reps != 3 {
		t.Fatalf("unexpected result metadata: %+v", res)
	}
	if res.Seconds <= 0 || res.GFlops <= 0 {
		t.Fatalf("non-positive timing: %+v", res)
	}
	if res.BestSeconds > res.Seconds {
		t.Fatalf("best %v slower than median %v", res.BestSeconds, res.Seconds)
	}
	if res.BestGFlops < res.GFlops {
		t.Fatalf("best GFLOP/s %v below median %v", res.BestGFlops, res.GFlops)
	}
}

func TestBenchCallInPlaceKernels(t *testing.T) {
	// POTRF and TRSM mutate their operands; BenchCall must re-materialise
	// them each repetition, so repeated factorisations succeed (a repeated
	// in-place Cholesky of its own output would fail or measure garbage).
	for _, call := range []kernels.Call{
		kernels.NewPotrf(48, "S"),
		kernels.NewTrsm(48, 16, "L", "B", false),
	} {
		res := BenchCall(call, 4, xrand.New(2))
		if res.Seconds <= 0 || res.GFlops <= 0 {
			t.Fatalf("%s: non-positive timing: %+v", call, res)
		}
	}
}

func TestRunBenchGridShort(t *testing.T) {
	rep := RunBenchGrid(true, 1, false, false)
	if rep.Backend == "" || rep.GoMaxProcs < 1 || rep.Workers < 1 {
		t.Fatalf("bad report metadata: %+v", rep)
	}
	if rep.PeakGFlops <= 0 {
		t.Fatalf("peak not measured: %v", rep.PeakGFlops)
	}
	kinds := map[string]bool{}
	for _, r := range rep.Results {
		kinds[r.Kernel] = true
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive time", r.Kernel)
		}
	}
	for _, want := range []string{"gemm", "syrk", "symm", "trsm", "potrf"} {
		if !kinds[want] {
			t.Fatalf("grid missing kernel %q (got %v)", want, kinds)
		}
	}
	// The report must round-trip through JSON for BENCH_<n>.json.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back BenchReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Results) != len(rep.Results) {
		t.Fatalf("round-trip lost results: %d vs %d", len(back.Results), len(rep.Results))
	}
}

func TestFlushCacheTracksFlushBytes(t *testing.T) {
	e := NewMeasured()
	e.flushCache()
	first := len(e.flushBuf)
	if first != e.FlushBytes/8 {
		t.Fatalf("flush buffer %d floats, want %d", first, e.FlushBytes/8)
	}
	// Shrinking FlushBytes after the first flush must take effect.
	e.FlushBytes = 1 << 20
	e.flushCache()
	if got := len(e.flushBuf); got != (1<<20)/8 {
		t.Fatalf("flush buffer not resized: %d floats, want %d", got, (1<<20)/8)
	}
	// And tiny values are clamped to the 1024-float floor.
	e.FlushBytes = 16
	e.flushCache()
	if got := len(e.flushBuf); got != 1024 {
		t.Fatalf("flush buffer floor: %d floats, want 1024", got)
	}
}
