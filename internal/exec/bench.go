package exec

// This file is the benchmark harness for the measured backend: a fixed
// kernel/shape grid timed through the same Dispatch path the experiments
// use, with GFLOP/s and allocation counts recorded per point. The
// `lamb bench` subcommand persists the report as BENCH_<n>.json so
// successive PRs have a performance trajectory to regress against, and
// Measured.Peak reuses BenchCall for its attainable-rate estimate.

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"lamb/internal/blas"
	"lamb/internal/expr"
	"lamb/internal/kernels"
	"lamb/internal/stats"
	"lamb/internal/xrand"
)

// BenchResult is one timed point of the benchmark grid.
type BenchResult struct {
	// Kernel is the kernel kind name (gemm, syrk, symm, trsm, potrf).
	Kernel string `json:"kernel"`
	// M, N, K are the call dimensions (N and K zero when unused).
	M int `json:"m"`
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// TransA and TransB record transposed reads (GEMM grid points).
	TransA bool `json:"transa,omitempty"`
	TransB bool `json:"transb,omitempty"`
	// Reps is the number of timed repetitions behind the medians.
	Reps int `json:"reps"`
	// Seconds is the median per-call wall time; BestSeconds the fastest.
	Seconds     float64 `json:"seconds"`
	BestSeconds float64 `json:"best_seconds"`
	// GFlops and BestGFlops convert those times with the call's
	// attributed FLOP count.
	GFlops     float64 `json:"gflops"`
	BestGFlops float64 `json:"best_gflops"`
	// AllocsPerOp counts heap allocations during one steady-state call.
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// AlgBenchResult is one whole-algorithm timed point: an algorithm of a
// registered expression executed end to end through a compiled plan with
// the full measurement protocol (in-place input refill, cache flush,
// per-call timing).
type AlgBenchResult struct {
	// Expr and Inst identify the expression and the instance sizes.
	Expr string `json:"expr"`
	Inst string `json:"inst"`
	// Alg is the paper's 1-based algorithm index; Calls its call count.
	Alg   int `json:"alg"`
	Calls int `json:"calls"`
	// Reps is the number of timed repetitions behind the medians.
	Reps int `json:"reps"`
	// Seconds is the median total (summed per-call) wall time;
	// BestSeconds the fastest repetition.
	Seconds     float64 `json:"seconds"`
	BestSeconds float64 `json:"best_seconds"`
	// GFlops and BestGFlops convert those times with the algorithm's
	// attributed FLOP count.
	GFlops     float64 `json:"gflops"`
	BestGFlops float64 `json:"best_gflops"`
	// AllocsPerRep counts heap allocations during one steady-state
	// repetition — flush, fill, and all kernel calls included. Zero on a
	// serial host is the compiled-plan guarantee.
	AllocsPerRep uint64 `json:"allocs_per_rep"`
}

// BatchBenchResult is one fused-vs-sequential comparison point: the
// min-FLOPs algorithm of an expression executed over a batch of small
// instances, once as the engine's per-instance dispatch (fill, flush,
// execute for every instance) and once fused through one BatchPlan (fill
// all, one flush, batched drivers). Rates are aggregate across the whole
// batch; Speedup is the fused-over-sequential wall-time ratio.
type BatchBenchResult struct {
	// Expr and Inst identify the expression and the per-instance sizes.
	Expr string `json:"expr"`
	Inst string `json:"inst"`
	// Alg is the timed algorithm's 1-based index (the min-FLOPs one).
	Alg int `json:"alg"`
	// Count is the batch width.
	Count int `json:"count"`
	// Reps is the number of timed repetitions behind the medians.
	Reps int `json:"reps"`
	// SeqSeconds and FusedSeconds are median whole-batch wall times,
	// dispatch overheads (refill, cache flush) included.
	SeqSeconds   float64 `json:"seq_seconds"`
	FusedSeconds float64 `json:"fused_seconds"`
	// SeqGFlops and FusedGFlops are the aggregate rates over the batch.
	SeqGFlops   float64 `json:"seq_gflops"`
	FusedGFlops float64 `json:"fused_gflops"`
	// SeqQPS and FusedQPS are instances answered per second.
	SeqQPS   float64 `json:"seq_qps"`
	FusedQPS float64 `json:"fused_qps"`
	// Speedup is SeqSeconds / FusedSeconds.
	Speedup float64 `json:"speedup"`
	// ParFused holds the parallel-tier points: the same fused batch
	// executed with the blas worker cap at 1, 2, 4 (the workers=1 point
	// is the serial-fused baseline re-measured through the same sweep).
	// On a single-core host the parallel tier cannot beat serial and
	// parity is the expected outcome (see BenchReport.Meta).
	ParFused []ParFusedPoint `json:"par_fused,omitempty"`
}

// ParFusedPoint is one parallel-tier fused measurement of a batch bench
// point at a fixed blas worker cap.
type ParFusedPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	GFlops  float64 `json:"gflops"`
	QPS     float64 `json:"qps"`
	// Speedup is the serial-fused median over this point's median.
	Speedup float64 `json:"speedup"`
}

// BenchReport is a full benchmark-grid run, serialised to BENCH_<n>.json
// by the lamb bench subcommand.
type BenchReport struct {
	// Backend names the executor that produced the numbers.
	Backend string `json:"backend"`
	// GoMaxProcs and Workers record the parallelism the grid ran with:
	// GOMAXPROCS and the blas worker cap in effect.
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// PeakGFlops is the attainable-rate estimate (Measured.Peak / 1e9).
	PeakGFlops float64       `json:"peak_gflops"`
	Results    []BenchResult `json:"results"`
	// Algorithms holds the whole-algorithm timing points (lamb bench
	// -algs); absent from kernel-only runs.
	Algorithms []AlgBenchResult `json:"algorithms,omitempty"`
	// Batches holds the fused-vs-sequential batch points (lamb bench
	// -batch); absent from kernel-only runs. The compare subcommand
	// reports deltas on this section informationally only (fused
	// speedups are a headline, not a regression gate).
	Batches []BatchBenchResult `json:"batches,omitempty"`
	// Meta carries free-form provenance notes about the run — in
	// particular the host's CPU count, and on single-core hosts the note
	// that parallel-fused points are expected at parity with
	// serial-fused.
	Meta map[string]string `json:"meta,omitempty"`
}

// BenchCall times a single kernel call reps times through a compiled
// single-call plan. Operands are refilled in place per repetition
// (in-place kernels like POTRF and TRSM need fresh inputs every time),
// so the steady-state repetitions perform no heap allocations; the
// recorded AllocsPerOp pins that down.
func BenchCall(call kernels.Call, reps int, rng *xrand.Rand) BenchResult {
	if reps < 1 {
		reps = 1
	}
	p, err := CompileCallPlan(call)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	// Warm up: populate the packing-buffer pools and the instruction
	// cache so the timed repetitions see steady state.
	p.FillInputs(rng)
	p.Execute()
	times := make([]float64, reps)
	for r := range times {
		p.FillInputs(rng)
		start := time.Now()
		p.Execute()
		times[r] = time.Since(start).Seconds()
	}
	best := times[0]
	for _, t := range times {
		if t < best {
			best = t
		}
	}
	med := stats.Median(times)
	// Allocation count for one call, measured outside the timed loop so
	// ReadMemStats doesn't pollute the timings.
	p.FillInputs(rng)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	p.Execute()
	runtime.ReadMemStats(&m1)
	flops := call.Flops()
	return BenchResult{
		Kernel:      call.Kind.String(),
		M:           call.M,
		N:           call.N,
		K:           call.K,
		TransA:      call.TransA,
		TransB:      call.TransB,
		Reps:        reps,
		Seconds:     med,
		BestSeconds: best,
		GFlops:      flops / med / 1e9,
		BestGFlops:  flops / best / 1e9,
		AllocsPerOp: m1.Mallocs - m0.Mallocs,
	}
}

// BenchAlgorithm times one algorithm end to end on the measured executor
// with the full repetition protocol, recording median and best totals
// plus the per-repetition allocation count.
func BenchAlgorithm(e *Measured, exprName string, inst expr.Instance, alg *expr.Algorithm, reps int) AlgBenchResult {
	if reps < 1 {
		reps = 1
	}
	totals := make([]float64, reps)
	e.TimeAlgorithm(alg, 0) // warm up: compiles the plan
	for r := range totals {
		var sum float64
		for _, t := range e.TimeAlgorithm(alg, uint64(r)) {
			sum += t
		}
		totals[r] = sum
	}
	best := totals[0]
	for _, t := range totals {
		if t < best {
			best = t
		}
	}
	med := stats.Median(totals)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	e.TimeAlgorithm(alg, 0)
	runtime.ReadMemStats(&m1)
	flops := alg.Flops()
	return AlgBenchResult{
		Expr:         exprName,
		Inst:         inst.String(),
		Alg:          alg.Index,
		Calls:        len(alg.Calls),
		Reps:         reps,
		Seconds:      med,
		BestSeconds:  best,
		GFlops:       flops / med / 1e9,
		BestGFlops:   flops / best / 1e9,
		AllocsPerRep: m1.Mallocs - m0.Mallocs,
	}
}

// benchInstance is the fixed quick instance the whole-algorithm bench
// uses for an expression of the given arity: sizes around 200, staggered
// so no two dimensions coincide.
func benchInstance(arity int) expr.Instance {
	inst := make(expr.Instance, arity)
	for i := range inst {
		inst[i] = 160 + 32*i
	}
	return inst
}

// RunAlgBench times every algorithm of every registered expression at a
// fixed quick instance through compiled plans.
func RunAlgBench(e *Measured, reps int) []AlgBenchResult {
	var out []AlgBenchResult
	for _, name := range expr.Names() {
		ex, err := expr.Lookup(name)
		if err != nil {
			panic(err)
		}
		inst := benchInstance(ex.Arity())
		algs := ex.Algorithms(inst)
		for i := range algs {
			out = append(out, BenchAlgorithm(e, name, inst, &algs[i], reps))
		}
	}
	return out
}

// minFlopsAlg returns the algorithm with the smallest attributed FLOP
// count — the one a min-flops selection would execute, and therefore the
// representative workload for dispatch-overhead comparisons.
func minFlopsAlg(algs []expr.Algorithm) *expr.Algorithm {
	best := &algs[0]
	for i := range algs[1:] {
		if algs[i+1].Flops() < best.Flops() {
			best = &algs[i+1]
		}
	}
	return best
}

// benchParWorkers is the worker-cap sweep the batch grid measures its
// parallel-fused points at.
var benchParWorkers = []int{1, 2, 4}

// BenchBatch times one fused-vs-sequential comparison point: count
// instances of the expression's min-FLOPs algorithm, first dispatched
// per instance exactly as the engine's sequential path does (refill,
// cache flush, execute — per instance), then fused through one BatchPlan
// (refill all, one flush, one batched execution). Both paths run the
// full measurement protocol, so the gap is the fused design's win:
// amortised flushes, shared packing buffers, and no per-dispatch setup.
// The sequential and fused baselines run with the blas worker cap at 1
// (serial fused kernels); each entry of parWorkers then re-times the
// fused batch with the cap at that count, so the parallel batched tier
// is measured against the serial-fused baseline at every width.
func BenchBatch(e *Measured, exprName string, inst expr.Instance, count, reps int, parWorkers []int) BatchBenchResult {
	if reps < 1 {
		reps = 1
	}
	ex, err := expr.Lookup(exprName)
	if err != nil {
		panic(fmt.Sprintf("exec: %v", err))
	}
	algs := ex.Algorithms(inst)
	alg := minFlopsAlg(algs)

	defer blas.SetMaxWorkers(blas.SetMaxWorkers(1))

	// Warm both paths: compile plans, populate pools.
	e.TimeAlgorithm(alg, 0)
	e.TimeAlgorithmBatch(alg, count, 0)

	seq := make([]float64, reps)
	fused := make([]float64, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < count; i++ {
			e.TimeAlgorithm(alg, uint64(r))
		}
		seq[r] = time.Since(start).Seconds()

		start = time.Now()
		e.TimeAlgorithmBatch(alg, count, uint64(r))
		fused[r] = time.Since(start).Seconds()
	}
	seqMed, fusedMed := stats.Median(seq), stats.Median(fused)
	flops := float64(count) * alg.Flops()
	res := BatchBenchResult{
		Expr:         exprName,
		Inst:         inst.String(),
		Alg:          alg.Index,
		Count:        count,
		Reps:         reps,
		SeqSeconds:   seqMed,
		FusedSeconds: fusedMed,
		SeqGFlops:    flops / seqMed / 1e9,
		FusedGFlops:  flops / fusedMed / 1e9,
		SeqQPS:       float64(count) / seqMed,
		FusedQPS:     float64(count) / fusedMed,
		Speedup:      seqMed / fusedMed,
	}
	for _, w := range parWorkers {
		blas.SetMaxWorkers(w)
		e.TimeAlgorithmBatch(alg, count, 0) // warm the worker pool at this cap
		par := make([]float64, reps)
		for r := 0; r < reps; r++ {
			start := time.Now()
			e.TimeAlgorithmBatch(alg, count, uint64(r))
			par[r] = time.Since(start).Seconds()
		}
		med := stats.Median(par)
		res.ParFused = append(res.ParFused, ParFusedPoint{
			Workers: w,
			Seconds: med,
			GFlops:  flops / med / 1e9,
			QPS:     float64(count) / med,
			Speedup: fusedMed / med,
		})
		blas.SetMaxWorkers(1)
	}
	return res
}

// RunBatchBench runs the fused-batch comparison grid: every registered
// expression at uniform instance dimensions 8 through 64, batch width 64
// (one fused chunk). These are the serving-regime sizes the fused path
// exists for — small instances whose measurement cost is dominated by
// per-dispatch overheads rather than kernel arithmetic. Every point also
// carries parallel-fused measurements at worker caps 1, 2, 4.
func RunBatchBench(e *Measured, short bool, reps int) []BatchBenchResult {
	dims, count := []int{8, 16, 32, 64}, 64
	if short {
		dims, count = []int{8, 32}, 16
	}
	var out []BatchBenchResult
	for _, name := range expr.Names() {
		ex, err := expr.Lookup(name)
		if err != nil {
			panic(err)
		}
		for _, d := range dims {
			inst := make(expr.Instance, ex.Arity())
			for i := range inst {
				inst[i] = d
			}
			out = append(out, BenchBatch(e, name, inst, count, reps, benchParWorkers))
		}
	}
	return out
}

// benchGrid returns the fixed kernel/shape grid: square and skinny GEMMs
// plus one or two shapes of each remaining kernel, small enough to finish
// in seconds on the pure-Go backend.
func benchGrid(short bool) []kernels.Call {
	if short {
		return []kernels.Call{
			kernels.NewGemm(96, 96, 96, "A", "B", "C", false, false),
			kernels.NewGemm(192, 192, 192, "A", "B", "C", false, false),
			kernels.NewGemm(96, 96, 96, "A", "B", "C", true, false),
			kernels.NewSyrk(128, 64, "A", "C"),
			kernels.NewSymm(128, 128, "A", "B", "C"),
			kernels.NewTrsm(128, 128, "L", "B", false),
			kernels.NewPotrf(128, "S"),
		}
	}
	return []kernels.Call{
		kernels.NewGemm(128, 128, 128, "A", "B", "C", false, false),
		kernels.NewGemm(256, 256, 256, "A", "B", "C", false, false),
		kernels.NewGemm(512, 512, 512, "A", "B", "C", false, false),
		kernels.NewGemm(512, 512, 16, "A", "B", "C", false, false),
		kernels.NewGemm(512, 512, 64, "A", "B", "C", false, false),
		kernels.NewGemm(512, 16, 512, "A", "B", "C", false, false),
		// Transposed reads exercise the strided packing paths (packAᵀ
		// and packB non-transposed are the interleaving cases).
		kernels.NewGemm(256, 256, 256, "A", "B", "C", true, false),
		kernels.NewGemm(256, 256, 256, "A", "B", "C", false, true),
		kernels.NewSyrk(256, 64, "A", "C"),
		kernels.NewSyrk(256, 256, "A", "C"),
		kernels.NewSymm(256, 256, "A", "B", "C"),
		kernels.NewTrsm(256, 256, "L", "B", false),
		kernels.NewTrsm(256, 32, "L", "B", true),
		kernels.NewPotrf(256, "S"),
		kernels.NewPotrf(512, "S"),
	}
}

// RunBenchGrid runs the fixed benchmark grid on the measured backend and
// assembles the report. With algs set, every algorithm of every
// registered expression is also timed end to end through compiled plans;
// with batch set, the fused-vs-sequential batch grid runs too.
func RunBenchGrid(short bool, reps int, algs, batch bool) BenchReport {
	e := NewMeasured()
	rng := xrand.New(0xbe9c4)
	rep := BenchReport{
		Backend:    e.Name(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    blas.Workers(),
		PeakGFlops: e.Peak() / 1e9,
		Meta:       map[string]string{"ncpu": strconv.Itoa(runtime.NumCPU())},
	}
	if batch && runtime.NumCPU() == 1 {
		rep.Meta["batch_note"] = "single-core host: parallel-fused points run the worker tier but cannot beat serial-fused; parity is the expected outcome"
	}
	for _, call := range benchGrid(short) {
		rep.Results = append(rep.Results, BenchCall(call, reps, rng))
	}
	if algs {
		rep.Algorithms = RunAlgBench(e, reps)
	}
	if batch {
		rep.Batches = RunBatchBench(e, short, reps)
	}
	return rep
}
