package exec

// This file is the benchmark harness for the measured backend: a fixed
// kernel/shape grid timed through the same Dispatch path the experiments
// use, with GFLOP/s and allocation counts recorded per point. The
// `lamb bench` subcommand persists the report as BENCH_<n>.json so
// successive PRs have a performance trajectory to regress against, and
// Measured.Peak reuses BenchCall for its attainable-rate estimate.

import (
	"runtime"
	"time"

	"lamb/internal/blas"
	"lamb/internal/kernels"
	"lamb/internal/stats"
	"lamb/internal/xrand"
)

// BenchResult is one timed point of the benchmark grid.
type BenchResult struct {
	// Kernel is the kernel kind name (gemm, syrk, symm, trsm, potrf).
	Kernel string `json:"kernel"`
	// M, N, K are the call dimensions (N and K zero when unused).
	M int `json:"m"`
	N int `json:"n,omitempty"`
	K int `json:"k,omitempty"`
	// Reps is the number of timed repetitions behind the medians.
	Reps int `json:"reps"`
	// Seconds is the median per-call wall time; BestSeconds the fastest.
	Seconds     float64 `json:"seconds"`
	BestSeconds float64 `json:"best_seconds"`
	// GFlops and BestGFlops convert those times with the call's
	// attributed FLOP count.
	GFlops     float64 `json:"gflops"`
	BestGFlops float64 `json:"best_gflops"`
	// AllocsPerOp counts heap allocations during one steady-state call.
	AllocsPerOp uint64 `json:"allocs_per_op"`
}

// BenchReport is a full benchmark-grid run, serialised to BENCH_<n>.json
// by the lamb bench subcommand.
type BenchReport struct {
	// Backend names the executor that produced the numbers.
	Backend string `json:"backend"`
	// GoMaxProcs and Workers record the parallelism the grid ran with:
	// GOMAXPROCS and the blas worker cap in effect.
	GoMaxProcs int `json:"gomaxprocs"`
	Workers    int `json:"workers"`
	// PeakGFlops is the attainable-rate estimate (Measured.Peak / 1e9).
	PeakGFlops float64       `json:"peak_gflops"`
	Results    []BenchResult `json:"results"`
}

// BenchCall times a single kernel call reps times on freshly materialised
// operands (in-place kernels like POTRF and TRSM need fresh inputs every
// repetition) and counts steady-state heap allocations for one call.
func BenchCall(call kernels.Call, reps int, rng *xrand.Rand) BenchResult {
	if reps < 1 {
		reps = 1
	}
	// Warm up: populate the packing-buffer pools and the instruction
	// cache so the timed repetitions see steady state.
	Dispatch(call, operandsForCall(call, rng))
	times := make([]float64, reps)
	for r := range times {
		ops := operandsForCall(call, rng)
		start := time.Now()
		Dispatch(call, ops)
		times[r] = time.Since(start).Seconds()
	}
	best := times[0]
	for _, t := range times {
		if t < best {
			best = t
		}
	}
	med := stats.Median(times)
	// Allocation count for one call, measured outside the timed loop so
	// ReadMemStats doesn't pollute the timings.
	ops := operandsForCall(call, rng)
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	Dispatch(call, ops)
	runtime.ReadMemStats(&m1)
	flops := call.Flops()
	return BenchResult{
		Kernel:      call.Kind.String(),
		M:           call.M,
		N:           call.N,
		K:           call.K,
		Reps:        reps,
		Seconds:     med,
		BestSeconds: best,
		GFlops:      flops / med / 1e9,
		BestGFlops:  flops / best / 1e9,
		AllocsPerOp: m1.Mallocs - m0.Mallocs,
	}
}

// benchGrid returns the fixed kernel/shape grid: square and skinny GEMMs
// plus one or two shapes of each remaining kernel, small enough to finish
// in seconds on the pure-Go backend.
func benchGrid(short bool) []kernels.Call {
	if short {
		return []kernels.Call{
			kernels.NewGemm(96, 96, 96, "A", "B", "C", false, false),
			kernels.NewGemm(192, 192, 192, "A", "B", "C", false, false),
			kernels.NewSyrk(128, 64, "A", "C"),
			kernels.NewSymm(128, 128, "A", "B", "C"),
			kernels.NewTrsm(128, 128, "L", "B", false),
			kernels.NewPotrf(128, "S"),
		}
	}
	return []kernels.Call{
		kernels.NewGemm(128, 128, 128, "A", "B", "C", false, false),
		kernels.NewGemm(256, 256, 256, "A", "B", "C", false, false),
		kernels.NewGemm(512, 512, 512, "A", "B", "C", false, false),
		kernels.NewGemm(512, 512, 16, "A", "B", "C", false, false),
		kernels.NewGemm(512, 16, 512, "A", "B", "C", false, false),
		kernels.NewSyrk(256, 64, "A", "C"),
		kernels.NewSyrk(256, 256, "A", "C"),
		kernels.NewSymm(256, 256, "A", "B", "C"),
		kernels.NewTrsm(256, 256, "L", "B", false),
		kernels.NewPotrf(256, "S"),
		kernels.NewPotrf(512, "S"),
	}
}

// RunBenchGrid runs the fixed benchmark grid on the measured backend and
// assembles the report.
func RunBenchGrid(short bool, reps int) BenchReport {
	e := NewMeasured()
	rng := xrand.New(0xbe9c4)
	rep := BenchReport{
		Backend:    e.Name(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    blas.Workers(),
		PeakGFlops: e.Peak() / 1e9,
	}
	for _, call := range benchGrid(short) {
		rep.Results = append(rep.Results, BenchCall(call, reps, rng))
	}
	return rep
}
