// Package outcomes is the engine's feedback memory: measured outcomes
// recorded per (expression, instance), searched by log-shape distance,
// decayed over time, and snapshotted to disk so accumulated learning
// survives process restarts (the durability half of the online decision
// process of arXiv:2209.03258 — feedback only compounds if it outlives
// the process that collected it).
//
// The store is concurrency-safe and bounded (least-recently-touched
// records evicted at capacity). Each recorded algorithm outcome carries
// an exponentially decayed weight: with a configured half-life, a
// measurement's influence halves every half-life of wall time, so
// pre-restart (or merely stale) measurements cannot dominate fresh
// evidence forever.
package outcomes

import (
	"math"
	"sort"
	"sync"
	"time"

	"lamb/internal/expr"
	"lamb/internal/selection"
)

// Store is the concurrency-safe feedback store. Like the engine's cache
// layers it is bounded — maxPoints distinct (expression, instance)
// records, least-recently-touched evicted — so abusive or merely
// long-lived feedback traffic cannot grow it without limit. The bound
// also caps Near's linear scan.
type Store struct {
	mu        sync.Mutex
	byExpr    map[string]map[string]*record
	points    int // distinct (expression, instance) records
	maxPoints int
	seq       uint64
	// halfLife is the weight half-life in seconds; <= 0 disables decay.
	halfLife float64
	// now supplies wall time as unix seconds; tests inject a frozen
	// clock to pin decay arithmetic exactly.
	now func() float64
}

// record is everything recorded at one (expression, instance) point.
type record struct {
	inst   expr.Instance // retained for snapshots
	coords []float64     // log-shape coordinates, precomputed
	algs   map[outcomeKey]*algOutcome
	// seq is the store's counter value at the last touch — feedback
	// recorded or evidence served to an adaptive query — the eviction
	// order once the store is full.
	seq uint64
}

// outcomeKey identifies one evidence stream at a record: an algorithm
// index and the source the evidence arrived from. The empty source is
// this process's own feedback; non-empty sources tag evidence merged
// from peers (Merge), kept separate so a later merge from the same peer
// replaces — never double-counts — what that peer contributed before.
type outcomeKey struct {
	alg    int
	source string
}

// algOutcome aggregates the measurements reported for one algorithm at
// one instance: a decayed-weight running mean and Welford spread plus
// the raw count.
type algOutcome struct {
	count  int     // raw measurements ever recorded (never decayed)
	weight float64 // decayed pseudo-count
	mean   float64 // weighted mean of reported seconds
	m2     float64 // weighted sum of squared deviations (Welford)
	last   float64 // unix seconds the weight was last decayed to
}

// decayTo folds wall time into the weight: halving per halfLife seconds
// since the last touch. m2 decays by the same factor, so the stream's
// variance (m2/weight) is invariant under decay — old evidence loses
// mass, not spread.
func (a *algOutcome) decayTo(now, halfLife float64) {
	if halfLife <= 0 || now <= a.last {
		return
	}
	f := math.Exp2(-(now - a.last) / halfLife)
	a.weight *= f
	a.m2 *= f
	a.last = now
}

// NewStore returns a bounded store. halfLife <= 0 disables decay.
func NewStore(maxPoints int, halfLife time.Duration) *Store {
	return &Store{
		byExpr:    make(map[string]map[string]*record),
		maxPoints: maxPoints,
		halfLife:  halfLife.Seconds(),
		now:       func() float64 { return float64(time.Now().UnixNano()) / 1e9 },
	}
}

// SetClock replaces the store's wall-time source (unix seconds) for
// tests that pin decay arithmetic.
func (st *Store) SetClock(now func() float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.now = now
}

// logCoords maps an instance into log-shape space, where the adaptive
// neighbourhood is defined: ratios of sizes, not absolute differences,
// determine whether two instances behave alike.
func logCoords(inst expr.Instance) []float64 {
	out := make([]float64, len(inst))
	for i, d := range inst {
		out[i] = math.Log(float64(d))
	}
	return out
}

// logDistance is the Euclidean distance between two log-shape points.
// Instances of different arity are infinitely far apart.
func logDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Add records one measurement, evicting the least-recently-touched
// record when the store is at capacity. Direct feedback is always
// local evidence (the empty source).
func (st *Store) Add(exprName string, inst expr.Instance, alg int, seconds float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	o := st.touch(exprName, inst)
	key := outcomeKey{alg: alg}
	ao := o.algs[key]
	if ao == nil {
		ao = &algOutcome{last: st.now()}
		o.algs[key] = ao
	}
	ao.decayTo(st.now(), st.halfLife)
	// Weighted Welford update with a unit-mass increment: the mean
	// matches the plain running mean exactly, and m2 accumulates the
	// weighted squared deviations that back the posterior's variance.
	ao.count++
	ao.weight++
	delta := seconds - ao.mean
	ao.mean += delta / ao.weight
	ao.m2 += delta * (seconds - ao.mean)
}

// restore installs one snapshot outcome verbatim (weight, mean, count,
// source, and decay timestamp), merging into any existing record.
func (st *Store) restore(exprName string, inst expr.Instance, o SnapshotOutcome, last float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.install(exprName, inst, o, o.Source, 1, last)
}

// install writes one outcome under (alg, source) with the weight scaled,
// creating the record as needed. Callers hold the write lock.
func (st *Store) install(exprName string, inst expr.Instance, o SnapshotOutcome, source string, scale, last float64) {
	rec := st.touch(exprName, inst)
	rec.algs[outcomeKey{alg: o.Algorithm, source: source}] = &algOutcome{
		count:  o.Count,
		weight: o.Weight * scale,
		mean:   o.Mean,
		// m2 scales with the weight so the stream's variance survives the
		// scaling unchanged. Version-1 snapshots carry no m2 (zero), which
		// downstream reads as "no tracked spread; the prior's stands in".
		m2:   o.M2 * scale,
		last: last,
	}
}

// touch returns the record for (exprName, inst), creating (and if
// necessary evicting) under the held lock, and refreshes its eviction
// sequence.
func (st *Store) touch(exprName string, inst expr.Instance) *record {
	key := inst.String()
	insts := st.byExpr[exprName]
	if insts == nil {
		insts = make(map[string]*record)
		st.byExpr[exprName] = insts
	}
	o := insts[key]
	if o == nil {
		if st.points >= st.maxPoints {
			// Eviction may remove this expression's last record and with
			// it the per-expression map itself — re-fetch so the insert
			// below never lands in an orphaned map.
			st.evictOldest()
			if insts = st.byExpr[exprName]; insts == nil {
				insts = make(map[string]*record)
				st.byExpr[exprName] = insts
			}
		}
		o = &record{inst: inst.Clone(), coords: logCoords(inst), algs: make(map[outcomeKey]*algOutcome)}
		insts[key] = o
		st.points++
	}
	st.seq++
	o.seq = st.seq
	return o
}

// evictOldest drops the record with the smallest touch sequence. A
// linear scan is fine: it runs only when the store is full, over at
// most maxPoints records. Callers hold the write lock.
func (st *Store) evictOldest() {
	var (
		oldExpr, oldKey string
		oldSeq          uint64
		found           bool
	)
	for exprName, insts := range st.byExpr {
		for key, o := range insts {
			if !found || o.seq < oldSeq {
				oldExpr, oldKey, oldSeq, found = exprName, key, o.seq, true
			}
		}
	}
	if found {
		delete(st.byExpr[oldExpr], oldKey)
		if len(st.byExpr[oldExpr]) == 0 {
			delete(st.byExpr, oldExpr)
		}
		st.points--
	}
}

// Near returns the aggregated observations recorded within radius of
// inst in log-shape space — the adaptive strategy's evidence, with
// decayed weights. Serving a record counts as a touch: evidence that is
// actively informing queries must not be evicted in favour of stale,
// never-queried records, so matches have their eviction seq refreshed —
// reads mutate, which is why the store uses a plain mutex.
func (st *Store) Near(exprName string, inst expr.Instance, radius float64) []selection.Observation {
	coords := logCoords(inst)
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	type stream struct {
		src string
		o   selection.Observation
	}
	var matches []stream
	for _, o := range st.byExpr[exprName] {
		d := logDistance(coords, o.coords)
		if d > radius {
			continue
		}
		st.seq++
		o.seq = st.seq
		// One observation per (algorithm, source) stream: the adaptive
		// blend sums weights per algorithm, so local and merged evidence
		// combine without the store pre-aggregating them.
		for key, ao := range o.algs {
			ao.decayTo(now, st.halfLife)
			matches = append(matches, stream{src: key.source, o: selection.Observation{
				Algorithm: key.alg,
				Seconds:   ao.mean,
				Count:     ao.count,
				Weight:    ao.weight,
				Distance:  d,
				M2:        ao.m2,
			}})
		}
	}
	// Map iteration order is random; the posterior accumulates these in
	// floating point, so identical store states must serve identically
	// ordered evidence or repeated queries would drift in the last bits.
	sort.Slice(matches, func(i, j int) bool {
		a, b := matches[i], matches[j]
		if a.o.Algorithm != b.o.Algorithm {
			return a.o.Algorithm < b.o.Algorithm
		}
		if a.src != b.src {
			return a.src < b.src
		}
		if a.o.Distance != b.o.Distance {
			return a.o.Distance < b.o.Distance
		}
		return a.o.Seconds < b.o.Seconds
	})
	if len(matches) == 0 {
		return nil
	}
	out := make([]selection.Observation, len(matches))
	for i, m := range matches {
		out[i] = m.o
	}
	return out
}

// Size returns the number of distinct recorded (expression, instance)
// points.
func (st *Store) Size() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.points
}
