package outcomes

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"lamb/internal/expr"
	"lamb/internal/faultinject"
)

// TestSnapshotRoundTripExact is the satellite pin: snapshot → restore →
// snapshot reproduces every record float64-exactly (like the profile
// store), including fractional decayed weights.
func TestSnapshotRoundTripExact(t *testing.T) {
	st, now := frozenStore(64, time.Hour)
	st.Add("AATB", expr.Instance{80, 514, 768}, 2, 0.0004)
	st.Add("AATB", expr.Instance{80, 514, 768}, 2, 0.0007)
	st.Add("AATB", expr.Instance{80, 514, 768}, 5, 0.31)
	st.Add("GLS", expr.Instance{40, 30, 20, 10}, 1, 1.25e-5)
	*now += 1234.5 // fractional decay: weights become irrational-ish floats
	st.Add("AATB", expr.Instance{120, 200, 300}, 1, 0.99)

	snap := st.Snapshot("PROFILE.json")
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, decoded) {
		t.Fatalf("snapshot did not round-trip through JSON:\n%+v\n%+v", snap, decoded)
	}

	st2, now2 := frozenStore(64, time.Hour)
	*now2 = *now
	restored, skipped := st2.Restore(decoded, nil)
	if restored != 4 || skipped != 0 {
		t.Fatalf("restored %d skipped %d", restored, skipped)
	}
	again := st2.Snapshot("PROFILE.json")
	if !reflect.DeepEqual(snap, again) {
		t.Fatalf("re-snapshot after restore differs:\n%+v\n%+v", snap, again)
	}
	// The restored store serves the identical evidence.
	want := st.Near("AATB", expr.Instance{80, 514, 768}, 0.01)
	got := st2.Near("AATB", expr.Instance{80, 514, 768}, 0.01)
	if len(want) != len(got) {
		t.Fatalf("restored evidence differs: %v vs %v", want, got)
	}
}

// TestSnapshotRestoreDecaysDowntime: evidence snapshotted at T and
// restored at T+halfLife serves at half weight — downtime decays
// exactly like uptime.
func TestSnapshotRestoreDecaysDowntime(t *testing.T) {
	st, now := frozenStore(16, time.Hour)
	inst := expr.Instance{100, 200, 300}
	st.Add("AATB", inst, 1, 1.0)
	snap := st.Snapshot("")

	st2, now2 := frozenStore(16, time.Hour)
	*now2 = *now + 3600 // restart one half-life later
	st2.Restore(snap, nil)
	obs := st2.Near("AATB", inst, 0.01)
	if len(obs) != 1 || obs[0].Weight != 0.5 {
		t.Fatalf("downtime did not decay restored weight: %+v", obs)
	}
}

func TestSnapshotRestoreKeepFilter(t *testing.T) {
	st, _ := frozenStore(16, 0)
	st.Add("AATB", expr.Instance{10, 20, 30}, 1, 1.0)
	st.Add("NOPE", expr.Instance{5, 5}, 1, 1.0)
	snap := st.Snapshot("")

	st2, _ := frozenStore(16, 0)
	restored, skipped := st2.Restore(snap, func(name string, inst expr.Instance, alg int) (string, bool) {
		return name, name == "AATB"
	})
	if restored != 1 || skipped != 1 {
		t.Fatalf("restored %d skipped %d", restored, skipped)
	}
	if st2.Size() != 1 {
		t.Fatalf("size %d", st2.Size())
	}
}

func TestSnapshotValidateRejectsMalformed(t *testing.T) {
	base := func() *Snapshot {
		return &Snapshot{
			SchemaVersion: SchemaVersion,
			Records: []SnapshotRecord{{
				Expr:     "AATB",
				Instance: expr.Instance{10, 20, 30},
				Outcomes: []SnapshotOutcome{{Algorithm: 1, Count: 1, Weight: 1, Mean: 0.5}},
			}},
		}
	}
	cases := map[string]func(*Snapshot){
		"future schema":   func(s *Snapshot) { s.SchemaVersion = SchemaVersion + 1 },
		"empty expr":      func(s *Snapshot) { s.Records[0].Expr = "" },
		"no instance":     func(s *Snapshot) { s.Records[0].Instance = nil },
		"zero dim":        func(s *Snapshot) { s.Records[0].Instance[1] = 0 },
		"alg zero":        func(s *Snapshot) { s.Records[0].Outcomes[0].Algorithm = 0 },
		"zero count":      func(s *Snapshot) { s.Records[0].Outcomes[0].Count = 0 },
		"negative weight": func(s *Snapshot) { s.Records[0].Outcomes[0].Weight = -1 },
		"NaN weight":      func(s *Snapshot) { s.Records[0].Outcomes[0].Weight = nan() },
		"zero mean":       func(s *Snapshot) { s.Records[0].Outcomes[0].Mean = 0 },
		"inf mean":        func(s *Snapshot) { s.Records[0].Outcomes[0].Mean = inf() },
	}
	for name, mutate := range cases {
		s := base()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

func TestSnapshotDecodeRejectsGarbage(t *testing.T) {
	for name, body := range map[string]string{
		"not json":  "}{",
		"truncated": `{"schema_version": 1, "records": [`,
		"oldage":    `{"schema_version": 99, "records": []}`,
	} {
		if _, err := DecodeSnapshot(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSnapshotWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "outcomes.json")
	st, _ := frozenStore(16, 0)
	st.Add("AATB", expr.Instance{10, 20, 30}, 1, 1.0)
	if err := st.Snapshot("p").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	first, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Records) != 1 || first.Profile != "p" {
		t.Fatalf("snapshot %+v", first)
	}

	// An injected write failure must leave the previous snapshot intact
	// and no temp litter behind.
	if err := faultinject.Arm("outcomes.write", "error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(faultinject.Reset)
	st.Add("AATB", expr.Instance{11, 21, 31}, 1, 2.0)
	if err := st.Snapshot("p").WriteFile(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed write returned %v", err)
	}
	faultinject.Reset()
	after, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, after) {
		t.Fatal("failed write corrupted the previous snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter in %s: %v", dir, entries)
	}
}
