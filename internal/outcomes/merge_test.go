package outcomes

import (
	"reflect"
	"testing"
	"time"

	"lamb/internal/expr"
)

// mergeFixture builds a peer store with some local evidence and returns
// its local snapshot, taken at the frozen clock.
func mergeFixture(t *testing.T) *Snapshot {
	t.Helper()
	peer, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	peer.Add("AATB", inst, 1, 0.25)
	peer.Add("AATB", inst, 1, 0.75)
	peer.Add("AATB", inst, 2, 0.875)
	return peer.SnapshotLocal("peer-profile")
}

func TestMergeInstallsPeerEvidence(t *testing.T) {
	snap := mergeFixture(t)
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	st.Add("AATB", inst, 1, 1.0)

	merged, skipped := st.Merge("http://peer-a", snap, 0.5, nil)
	if merged != 2 || skipped != 0 {
		t.Fatalf("merged %d skipped %d", merged, skipped)
	}
	obs := st.Near("AATB", inst, 0.01)
	// Local alg-1 evidence plus the peer's alg-1 and alg-2 streams.
	if len(obs) != 3 {
		t.Fatalf("observations %+v", obs)
	}
	var sawLocal, sawPeer1, sawPeer2 bool
	for _, o := range obs {
		switch {
		case o.Algorithm == 1 && o.Count == 1:
			sawLocal = true
			if o.Weight != 1 || o.Seconds != 1.0 {
				t.Fatalf("local observation %+v", o)
			}
		case o.Algorithm == 1 && o.Count == 2:
			sawPeer1 = true
			// Peer weight 2 scaled by 0.5; mean untouched by the scale.
			if o.Weight != 1 || o.Seconds != 0.5 {
				t.Fatalf("peer alg-1 observation %+v", o)
			}
		case o.Algorithm == 2:
			sawPeer2 = true
			if o.Weight != 0.5 || o.Seconds != 0.875 {
				t.Fatalf("peer alg-2 observation %+v", o)
			}
		}
	}
	if !sawLocal || !sawPeer1 || !sawPeer2 {
		t.Fatalf("missing streams: local=%v peer1=%v peer2=%v in %+v", sawLocal, sawPeer1, sawPeer2, obs)
	}
}

// TestMergeIdempotent is the cross-process contract: replaying the same
// snapshot (a retried POST, an overlapping gossip round) leaves the
// store byte-identical, and a newer snapshot from the same source
// replaces — never double-counts — the older one.
func TestMergeIdempotent(t *testing.T) {
	snap := mergeFixture(t)
	st, _ := frozenStore(16, 0)
	st.Add("AATB", expr.Instance{80, 514, 768}, 3, 2.0)

	st.Merge("http://peer-a", snap, 0.5, nil)
	once := st.Snapshot("p")
	st.Merge("http://peer-a", snap, 0.5, nil)
	twice := st.Snapshot("p")
	if !reflect.DeepEqual(once, twice) {
		t.Fatalf("double merge changed the store:\n%+v\n%+v", once, twice)
	}

	// A later peer snapshot with more evidence supersedes, the weights
	// reflecting only the new snapshot (replace, not accumulate).
	peer, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	for i := 0; i < 5; i++ {
		peer.Add("AATB", inst, 1, 0.2)
	}
	st.Merge("http://peer-a", peer.SnapshotLocal("p"), 1, nil)
	for _, o := range st.Near("AATB", inst, 0.01) {
		if o.Algorithm == 1 && o.Weight != 5 {
			t.Fatalf("superseding merge did not replace: %+v", o)
		}
		if o.Algorithm == 2 {
			t.Fatalf("stale peer outcome survived the newer snapshot: %+v", o)
		}
	}
}

// TestMergeSourcesStayIsolated: two peers' evidence lives in separate
// streams; re-merging one peer leaves the other (and local feedback)
// untouched.
func TestMergeSourcesStayIsolated(t *testing.T) {
	snap := mergeFixture(t)
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	st.Merge("http://peer-a", snap, 1, nil)
	st.Merge("http://peer-b", snap, 1, nil)
	if got := len(st.Near("AATB", inst, 0.01)); got != 4 {
		t.Fatalf("want 4 streams (2 algs × 2 peers), got %d", got)
	}
	// Empty the view of peer-a by merging an empty snapshot from it.
	empty, _ := frozenStore(16, 0)
	st.Merge("http://peer-a", empty.SnapshotLocal(""), 1, nil)
	if got := len(st.Near("AATB", inst, 0.01)); got != 2 {
		t.Fatalf("want peer-b's 2 streams after emptying peer-a, got %d", got)
	}
}

// TestMergeSkipsForeignAndUnresolved: outcomes that carry a source tag
// (third-party evidence inside a full snapshot) and records the resolver
// rejects are skipped, not installed.
func TestMergeSkipsForeignAndUnresolved(t *testing.T) {
	st, _ := frozenStore(16, 0)
	snap := mergeFixture(t)
	snap.Records[0].Outcomes[0].Source = "http://third-party"
	merged, skipped := st.Merge("http://peer-a", snap, 1, nil)
	if merged != 1 || skipped != 1 {
		t.Fatalf("merged %d skipped %d", merged, skipped)
	}

	st2, _ := frozenStore(16, 0)
	merged, skipped = st2.Merge("http://peer-a", mergeFixture(t), 1,
		func(string, expr.Instance, int) (string, bool) { return "", false })
	if merged != 0 || skipped != 2 || st2.Size() != 0 {
		t.Fatalf("merged %d skipped %d size %d", merged, skipped, st2.Size())
	}

	// The empty source is reserved for local evidence; the backstop
	// refuses rather than colliding.
	if merged, _ := st.Merge("", mergeFixture(t), 1, nil); merged != 0 {
		t.Fatalf("empty source merged %d outcomes", merged)
	}
}

// TestMergeDecaysFromSnapshotCreation: merged weights age from the
// snapshot's creation moment, so stale gossip arrives pre-decayed.
func TestMergeDecaysFromSnapshotCreation(t *testing.T) {
	peer, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	peer.Add("AATB", inst, 1, 0.2)
	snap := peer.SnapshotLocal("") // CreatedUnix = the frozen clock

	// A store with a one-hour half-life, read one half-life after the
	// snapshot was taken: the merged weight must serve halved.
	st := NewStore(16, time.Hour)
	later := snap.CreatedUnix + time.Hour.Seconds()
	st.SetClock(func() float64 { return later })
	st.Merge("http://peer-a", snap, 1, nil)
	obs := st.Near("AATB", inst, 0.01)
	if len(obs) != 1 || obs[0].Weight != 0.5 {
		t.Fatalf("one half-life after snapshot creation: %+v", obs)
	}
}

// TestSnapshotLocalExcludesMergedEvidence pins the anti-echo property:
// the gossip export carries only firsthand evidence.
func TestSnapshotLocalExcludesMergedEvidence(t *testing.T) {
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	st.Add("AATB", inst, 3, 2.0)
	st.Merge("http://peer-a", mergeFixture(t), 1, nil)
	st.Merge("http://peer-a/other", mergeFixture(t), 1, nil)

	local := st.SnapshotLocal("p")
	if len(local.Records) != 1 || len(local.Records[0].Outcomes) != 1 {
		t.Fatalf("local export %+v", local.Records)
	}
	if o := local.Records[0].Outcomes[0]; o.Algorithm != 3 || o.Source != "" {
		t.Fatalf("local export outcome %+v", o)
	}
	// The full snapshot keeps everything, tagged.
	full := st.Snapshot("p")
	total, sourced := 0, 0
	for _, rec := range full.Records {
		for _, o := range rec.Outcomes {
			total++
			if o.Source != "" {
				sourced++
			}
		}
	}
	if total != 5 || sourced != 4 {
		t.Fatalf("full snapshot has %d outcomes, %d sourced", total, sourced)
	}
	if err := full.Validate(); err != nil {
		t.Fatalf("full snapshot invalid: %v", err)
	}
	// And a restore of the full snapshot brings the merged streams back.
	st2, _ := frozenStore(16, 0)
	restored, skipped := st2.Restore(full, nil)
	if restored != 5 || skipped != 0 {
		t.Fatalf("restore: %d/%d", restored, skipped)
	}
	if got := len(st2.Near("AATB", inst, 0.01)); got != 5 {
		t.Fatalf("restored streams %d", got)
	}
}
