// Outcome-store persistence: a versioned JSON schema, mirroring
// lamb/internal/profile's store format, that makes the feedback memory
// a durable artifact. `lamb serve -outcomes FILE` restores the store at
// boot and snapshots it periodically and at shutdown (atomic
// temp-file+rename, so a crash mid-write never corrupts the last good
// snapshot); a SIGKILL loses at most one snapshot interval of feedback.
//
// The file format is one JSON object:
//
//	{
//	  "schema_version": 1,
//	  "created_at": "2026-08-07T12:00:00Z",
//	  "created_unix": 1786190400.0,
//	  "half_life_seconds": 3600,
//	  "profile": "PROFILE.json",
//	  "records": [
//	    {"expr": "AATB", "instance": [80,514,768], "outcomes": [
//	      {"algorithm": 2, "count": 3, "weight": 2.71, "mean": 0.0004}
//	    ]},
//	    ...
//	  ]
//	}
//
// Weights are decayed to the snapshot moment before encoding, and on
// restore the decay clock resumes from created_unix — so downtime
// itself decays the restored evidence, exactly as if the process had
// stayed up. Counts, weights, and means are serialised as float64
// through encoding/json, whose shortest round-trip representation is
// exact: a restored store serves bit-for-bit the evidence the snapshot
// held (pinned by snapshot_test.go).
package outcomes

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lamb/internal/expr"
	"lamb/internal/faultinject"
)

// SchemaVersion is the version of the snapshot file format this package
// writes and accepts. Bump it on incompatible schema changes; Decode
// rejects mismatching files rather than misreading them.
const SchemaVersion = 1

// Snapshot is the serialised form of a Store: every record's decayed
// evidence as of CreatedUnix.
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is the human-readable RFC 3339 snapshot timestamp;
	// CreatedUnix is the same moment as unix seconds, the value the
	// decay clock resumes from on restore.
	CreatedAt   string  `json:"created_at,omitempty"`
	CreatedUnix float64 `json:"created_unix"`
	// HalfLifeSeconds records the decay configuration the weights were
	// accumulated under (informational; the restoring store keeps its
	// own configuration).
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`
	// Profile is the provenance tag of the profile store the engine was
	// serving when the snapshot was taken, so an operator can tell which
	// prior the recorded outcomes were blended against.
	Profile string           `json:"profile,omitempty"`
	Records []SnapshotRecord `json:"records"`
}

// SnapshotRecord is one (expression, instance) point's outcomes.
type SnapshotRecord struct {
	Expr     string            `json:"expr"`
	Instance expr.Instance     `json:"instance"`
	Outcomes []SnapshotOutcome `json:"outcomes"`
}

// SnapshotOutcome is one algorithm's aggregated evidence.
type SnapshotOutcome struct {
	// Algorithm is the paper's 1-based index into the instance's set.
	Algorithm int `json:"algorithm"`
	// Count is the raw number of measurements ever recorded (undecayed).
	Count int `json:"count"`
	// Weight is the decayed pseudo-count as of the snapshot moment.
	Weight float64 `json:"weight"`
	// Mean is the weighted mean of the reported seconds.
	Mean float64 `json:"mean"`
}

// Snapshot captures the store's current contents, with every weight
// decayed to the snapshot moment. Records are sorted (expression, then
// instance) so snapshots are deterministic byte-for-byte for a given
// store state and clock.
func (st *Store) Snapshot(profileID string) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	snap := &Snapshot{
		SchemaVersion:   SchemaVersion,
		CreatedAt:       time.Unix(0, int64(now*1e9)).UTC().Format(time.RFC3339),
		CreatedUnix:     now,
		HalfLifeSeconds: st.halfLife,
		Profile:         profileID,
		Records:         []SnapshotRecord{},
	}
	for exprName, insts := range st.byExpr {
		for _, rec := range insts {
			sr := SnapshotRecord{Expr: exprName, Instance: rec.inst.Clone()}
			for alg, ao := range rec.algs {
				ao.decayTo(now, st.halfLife)
				sr.Outcomes = append(sr.Outcomes, SnapshotOutcome{
					Algorithm: alg, Count: ao.count, Weight: ao.weight, Mean: ao.mean,
				})
			}
			sort.Slice(sr.Outcomes, func(i, j int) bool {
				return sr.Outcomes[i].Algorithm < sr.Outcomes[j].Algorithm
			})
			snap.Records = append(snap.Records, sr)
		}
	}
	sort.Slice(snap.Records, func(i, j int) bool {
		if snap.Records[i].Expr != snap.Records[j].Expr {
			return snap.Records[i].Expr < snap.Records[j].Expr
		}
		return snap.Records[i].Instance.String() < snap.Records[j].Instance.String()
	})
	return snap
}

// Validate checks a decoded snapshot's structural invariants: schema
// version, finite positive weights and means, positive dimensions and
// algorithm indices. Semantic validation — does the expression exist,
// is the algorithm index within its set — is the restoring engine's
// job, which knows the registry.
func (s *Snapshot) Validate() error {
	if s.SchemaVersion != SchemaVersion {
		return fmt.Errorf("outcomes: snapshot has schema version %d, this build reads %d",
			s.SchemaVersion, SchemaVersion)
	}
	for _, rec := range s.Records {
		if rec.Expr == "" {
			return fmt.Errorf("outcomes: snapshot record with empty expression")
		}
		if len(rec.Instance) == 0 {
			return fmt.Errorf("outcomes: snapshot record %s has no instance", rec.Expr)
		}
		for _, d := range rec.Instance {
			if d <= 0 {
				return fmt.Errorf("outcomes: snapshot record %s%v has non-positive dimension", rec.Expr, rec.Instance)
			}
		}
		for _, o := range rec.Outcomes {
			switch {
			case o.Algorithm < 1:
				return fmt.Errorf("outcomes: snapshot record %s%v has algorithm index %d < 1", rec.Expr, rec.Instance, o.Algorithm)
			case o.Count < 1:
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has count %d < 1", rec.Expr, rec.Instance, o.Algorithm, o.Count)
			case !(o.Weight > 0) || math.IsInf(o.Weight, 0):
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has weight %v, want a positive finite value", rec.Expr, rec.Instance, o.Algorithm, o.Weight)
			case !(o.Mean > 0) || math.IsInf(o.Mean, 0):
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has mean %v, want a positive finite duration", rec.Expr, rec.Instance, o.Algorithm, o.Mean)
			}
		}
	}
	return nil
}

// Restore merges the snapshot's records into the store. resolve maps a
// record's expression name to its canonical store key and decides
// semantic validity (nil keeps everything under the recorded name);
// invalid records are skipped, not fatal — a snapshot may reference
// custom expressions a particular boot did not register, and one stale
// record must not discard the rest of the memory. The decay clock
// resumes from the snapshot's creation time, so downtime decays
// restored evidence. Returns (restored, skipped) outcome counts.
func (st *Store) Restore(s *Snapshot, resolve func(exprName string, inst expr.Instance, algorithm int) (canonical string, ok bool)) (restored, skipped int) {
	for _, rec := range s.Records {
		for _, o := range rec.Outcomes {
			name := rec.Expr
			if resolve != nil {
				canonical, ok := resolve(rec.Expr, rec.Instance, o.Algorithm)
				if !ok {
					skipped++
					continue
				}
				if canonical != "" {
					name = canonical
				}
			}
			st.restore(name, rec.Instance, o, s.CreatedUnix)
			restored++
		}
	}
	return restored, skipped
}

// Encode writes the snapshot as JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// DecodeSnapshot reads and structurally validates a snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("outcomes: decoding snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile saves the snapshot to path atomically: encoded to a temp
// file in the same directory, then renamed over the target, so a
// crashed writer (or the "outcomes.write" failpoint) never leaves a
// truncated snapshot where the last good one was.
func (s *Snapshot) WriteFile(path string) error {
	if err := faultinject.Fire("outcomes.write"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".outcomes-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp makes the file 0600; the snapshot is an operational
	// artifact (inspected, copied between hosts), so widen to the
	// conventional 0644 before the rename publishes it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and structurally validates a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
