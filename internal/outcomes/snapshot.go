// Outcome-store persistence: a versioned JSON schema, mirroring
// lamb/internal/profile's store format, that makes the feedback memory
// a durable artifact. `lamb serve -outcomes FILE` restores the store at
// boot and snapshots it periodically and at shutdown (atomic
// temp-file+rename, so a crash mid-write never corrupts the last good
// snapshot); a SIGKILL loses at most one snapshot interval of feedback.
//
// The file format is one JSON object:
//
//	{
//	  "schema_version": 2,
//	  "created_at": "2026-08-07T12:00:00Z",
//	  "created_unix": 1786190400.0,
//	  "half_life_seconds": 3600,
//	  "profile": "PROFILE.json",
//	  "records": [
//	    {"expr": "AATB", "instance": [80,514,768], "outcomes": [
//	      {"algorithm": 2, "count": 3, "weight": 2.71, "mean": 0.0004, "m2": 1.2e-9}
//	    ]},
//	    ...
//	  ]
//	}
//
// Schema version 2 added the per-stream "m2" Welford sum backing the
// posterior variance; version-1 files (no m2) still restore, their
// spread seeded from the prior.
//
// Weights are decayed to the snapshot moment before encoding, and on
// restore the decay clock resumes from created_unix — so downtime
// itself decays the restored evidence, exactly as if the process had
// stayed up. Counts, weights, and means are serialised as float64
// through encoding/json, whose shortest round-trip representation is
// exact: a restored store serves bit-for-bit the evidence the snapshot
// held (pinned by snapshot_test.go).
package outcomes

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lamb/internal/expr"
	"lamb/internal/faultinject"
)

// SchemaVersion is the version of the snapshot file format this package
// writes. Decode accepts every version from 1 up to this one — older
// schemas are strict subsets (version 1 merely lacks "m2") — and
// rejects newer files rather than misreading them.
const SchemaVersion = 2

// Snapshot is the serialised form of a Store: every record's decayed
// evidence as of CreatedUnix.
type Snapshot struct {
	SchemaVersion int `json:"schema_version"`
	// CreatedAt is the human-readable RFC 3339 snapshot timestamp;
	// CreatedUnix is the same moment as unix seconds, the value the
	// decay clock resumes from on restore.
	CreatedAt   string  `json:"created_at,omitempty"`
	CreatedUnix float64 `json:"created_unix"`
	// HalfLifeSeconds records the decay configuration the weights were
	// accumulated under (informational; the restoring store keeps its
	// own configuration).
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`
	// Profile is the provenance tag of the profile store the engine was
	// serving when the snapshot was taken, so an operator can tell which
	// prior the recorded outcomes were blended against.
	Profile string           `json:"profile,omitempty"`
	Records []SnapshotRecord `json:"records"`
}

// SnapshotRecord is one (expression, instance) point's outcomes.
type SnapshotRecord struct {
	Expr     string            `json:"expr"`
	Instance expr.Instance     `json:"instance"`
	Outcomes []SnapshotOutcome `json:"outcomes"`
}

// SnapshotOutcome is one algorithm's aggregated evidence.
type SnapshotOutcome struct {
	// Algorithm is the paper's 1-based index into the instance's set.
	Algorithm int `json:"algorithm"`
	// Count is the raw number of measurements ever recorded (undecayed).
	Count int `json:"count"`
	// Weight is the decayed pseudo-count as of the snapshot moment.
	Weight float64 `json:"weight"`
	// Mean is the weighted mean of the reported seconds.
	Mean float64 `json:"mean"`
	// M2 is the stream's decayed Welford sum of squared deviations (its
	// variance is M2/Weight). Zero — including in version-1 snapshots,
	// which predate the field — means no tracked spread; the restoring
	// posterior falls back to the prior's.
	M2 float64 `json:"m2,omitempty"`
	// Source tags evidence merged from a peer process (Store.Merge);
	// empty for evidence fed back directly to this process. Optional, so
	// schema-version-1 snapshots from before cross-process merging read
	// back unchanged.
	Source string `json:"source,omitempty"`
}

// Snapshot captures the store's current contents — local and merged
// evidence alike — with every weight decayed to the snapshot moment.
// Records are sorted (expression, then instance, then algorithm and
// source) so snapshots are deterministic byte-for-byte for a given
// store state and clock. This is the durability artifact `lamb serve
// -outcomes` writes: a restart restores merged peer evidence too.
func (st *Store) Snapshot(profileID string) *Snapshot {
	return st.snapshot(profileID, false)
}

// SnapshotLocal is Snapshot restricted to this process's own evidence
// (the empty source): the export `lamb serve` offers on /api/outcomes
// for cross-process merging. Gossiping only locally observed outcomes
// keeps merge convergent — a peer's evidence is never re-attributed to
// this process and echoed back to it amplified.
func (st *Store) SnapshotLocal(profileID string) *Snapshot {
	return st.snapshot(profileID, true)
}

func (st *Store) snapshot(profileID string, localOnly bool) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	snap := &Snapshot{
		SchemaVersion:   SchemaVersion,
		CreatedAt:       time.Unix(0, int64(now*1e9)).UTC().Format(time.RFC3339),
		CreatedUnix:     now,
		HalfLifeSeconds: st.halfLife,
		Profile:         profileID,
		Records:         []SnapshotRecord{},
	}
	for exprName, insts := range st.byExpr {
		for _, rec := range insts {
			sr := SnapshotRecord{Expr: exprName, Instance: rec.inst.Clone()}
			for key, ao := range rec.algs {
				if localOnly && key.source != "" {
					continue
				}
				ao.decayTo(now, st.halfLife)
				sr.Outcomes = append(sr.Outcomes, SnapshotOutcome{
					Algorithm: key.alg, Count: ao.count, Weight: ao.weight, Mean: ao.mean, M2: ao.m2, Source: key.source,
				})
			}
			if len(sr.Outcomes) == 0 {
				continue // a record holding only merged evidence, exported local-only
			}
			sort.Slice(sr.Outcomes, func(i, j int) bool {
				if sr.Outcomes[i].Algorithm != sr.Outcomes[j].Algorithm {
					return sr.Outcomes[i].Algorithm < sr.Outcomes[j].Algorithm
				}
				return sr.Outcomes[i].Source < sr.Outcomes[j].Source
			})
			snap.Records = append(snap.Records, sr)
		}
	}
	sort.Slice(snap.Records, func(i, j int) bool {
		if snap.Records[i].Expr != snap.Records[j].Expr {
			return snap.Records[i].Expr < snap.Records[j].Expr
		}
		return snap.Records[i].Instance.String() < snap.Records[j].Instance.String()
	})
	return snap
}

// Validate checks a decoded snapshot's structural invariants: schema
// version, finite positive weights and means, positive dimensions and
// algorithm indices. Semantic validation — does the expression exist,
// is the algorithm index within its set — is the restoring engine's
// job, which knows the registry.
func (s *Snapshot) Validate() error {
	if s.SchemaVersion < 1 || s.SchemaVersion > SchemaVersion {
		return fmt.Errorf("outcomes: snapshot has schema version %d, this build reads 1 through %d",
			s.SchemaVersion, SchemaVersion)
	}
	for _, rec := range s.Records {
		if rec.Expr == "" {
			return fmt.Errorf("outcomes: snapshot record with empty expression")
		}
		if len(rec.Instance) == 0 {
			return fmt.Errorf("outcomes: snapshot record %s has no instance", rec.Expr)
		}
		for _, d := range rec.Instance {
			if d <= 0 {
				return fmt.Errorf("outcomes: snapshot record %s%v has non-positive dimension", rec.Expr, rec.Instance)
			}
		}
		for _, o := range rec.Outcomes {
			switch {
			case o.Algorithm < 1:
				return fmt.Errorf("outcomes: snapshot record %s%v has algorithm index %d < 1", rec.Expr, rec.Instance, o.Algorithm)
			case o.Count < 1:
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has count %d < 1", rec.Expr, rec.Instance, o.Algorithm, o.Count)
			case !(o.Weight > 0) || math.IsInf(o.Weight, 0):
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has weight %v, want a positive finite value", rec.Expr, rec.Instance, o.Algorithm, o.Weight)
			case !(o.Mean > 0) || math.IsInf(o.Mean, 0):
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has mean %v, want a positive finite duration", rec.Expr, rec.Instance, o.Algorithm, o.Mean)
			case o.M2 < 0 || math.IsInf(o.M2, 0) || math.IsNaN(o.M2):
				return fmt.Errorf("outcomes: snapshot record %s%v algorithm %d has m2 %v, want a non-negative finite value", rec.Expr, rec.Instance, o.Algorithm, o.M2)
			}
		}
	}
	return nil
}

// Restore merges the snapshot's records into the store. resolve maps a
// record's expression name to its canonical store key and decides
// semantic validity (nil keeps everything under the recorded name);
// invalid records are skipped, not fatal — a snapshot may reference
// custom expressions a particular boot did not register, and one stale
// record must not discard the rest of the memory. The decay clock
// resumes from the snapshot's creation time, so downtime decays
// restored evidence. Returns (restored, skipped) outcome counts.
func (st *Store) Restore(s *Snapshot, resolve func(exprName string, inst expr.Instance, algorithm int) (canonical string, ok bool)) (restored, skipped int) {
	for _, rec := range s.Records {
		for _, o := range rec.Outcomes {
			name := rec.Expr
			if resolve != nil {
				canonical, ok := resolve(rec.Expr, rec.Instance, o.Algorithm)
				if !ok {
					skipped++
					continue
				}
				if canonical != "" {
					name = canonical
				}
			}
			st.restore(name, rec.Instance, o, s.CreatedUnix)
			restored++
		}
	}
	return restored, skipped
}

// Merge folds a peer's snapshot into the store under the given source
// tag. Semantics are replace-by-source: everything this source
// contributed before is dropped, then the snapshot's *local* outcomes
// (records the peer observed itself, not evidence it merged from third
// parties — those are skipped, which keeps gossip loops from amplifying
// evidence) are installed with their weights scaled by scale, so remote
// evidence can count for less than firsthand measurements. Replaying
// the same snapshot is therefore idempotent — state-based merging, not
// operation replay — and a newer snapshot from the same peer supersedes
// the older one instead of double-counting the history both contain.
//
// The installed outcomes' decay clock starts at the snapshot's creation
// time: evidence that was already old when it arrived is already partly
// decayed here. resolve is as in Restore. Returns (merged, skipped).
func (st *Store) Merge(source string, s *Snapshot, scale float64, resolve func(exprName string, inst expr.Instance, algorithm int) (canonical string, ok bool)) (merged, skipped int) {
	if source == "" {
		// An empty source would collide with local evidence; the caller
		// validates, this is the backstop.
		return 0, countOutcomes(s)
	}
	if scale <= 0 || scale > 1 || math.IsNaN(scale) {
		scale = 1
	}
	// Resolution (which may bind algorithm sets) runs before the lock;
	// the drop-and-install below is one critical section, so a reader
	// never sees the source half-replaced.
	type install struct {
		name string
		inst expr.Instance
		o    SnapshotOutcome
	}
	var installs []install
	for _, rec := range s.Records {
		for _, o := range rec.Outcomes {
			if o.Source != "" {
				skipped++
				continue
			}
			name := rec.Expr
			if resolve != nil {
				canonical, ok := resolve(rec.Expr, rec.Instance, o.Algorithm)
				if !ok {
					skipped++
					continue
				}
				if canonical != "" {
					name = canonical
				}
			}
			installs = append(installs, install{name: name, inst: rec.Instance, o: o})
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.dropSource(source)
	for _, in := range installs {
		st.install(in.name, in.inst, in.o, source, scale, s.CreatedUnix)
		merged++
	}
	return merged, skipped
}

// dropSource removes every outcome tagged with source, and any record
// (and expression map) left empty by the removal. Callers hold the
// write lock.
func (st *Store) dropSource(source string) {
	for exprName, insts := range st.byExpr {
		for instKey, rec := range insts {
			for key := range rec.algs {
				if key.source == source {
					delete(rec.algs, key)
				}
			}
			if len(rec.algs) == 0 {
				delete(insts, instKey)
				st.points--
			}
		}
		if len(insts) == 0 {
			delete(st.byExpr, exprName)
		}
	}
}

// countOutcomes totals a snapshot's outcome entries.
func countOutcomes(s *Snapshot) int {
	n := 0
	for _, rec := range s.Records {
		n += len(rec.Outcomes)
	}
	return n
}

// Encode writes the snapshot as JSON.
func (s *Snapshot) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// DecodeSnapshot reads and structurally validates a snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("outcomes: decoding snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteFile saves the snapshot to path atomically: encoded to a temp
// file in the same directory, then renamed over the target, so a
// crashed writer (or the "outcomes.write" failpoint) never leaves a
// truncated snapshot where the last good one was.
func (s *Snapshot) WriteFile(path string) error {
	if err := faultinject.Fire("outcomes.write"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".outcomes-*.json")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp makes the file 0600; the snapshot is an operational
	// artifact (inspected, copied between hosts), so widen to the
	// conventional 0644 before the rename publishes it.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads and structurally validates a snapshot file.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := DecodeSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
