package outcomes

import (
	"math"
	"testing"
	"time"

	"lamb/internal/expr"
)

// frozenStore returns a store whose clock is a settable variable, so
// decay arithmetic is deterministic.
func frozenStore(maxPoints int, halfLife time.Duration) (*Store, *float64) {
	st := NewStore(maxPoints, halfLife)
	now := new(float64)
	*now = 1000
	st.SetClock(func() float64 { return *now })
	return st, now
}

func TestStoreAddAndNear(t *testing.T) {
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	st.Add("AATB", inst, 2, 0.4)
	st.Add("AATB", inst, 2, 0.6)
	st.Add("AATB", inst, 3, 1.0)

	obs := st.Near("AATB", inst, 0.01)
	if len(obs) != 2 {
		t.Fatalf("observations %v", obs)
	}
	for _, o := range obs {
		switch o.Algorithm {
		case 2:
			if o.Count != 2 || o.Weight != 2 || o.Seconds != 0.5 {
				t.Fatalf("alg 2 observation %+v", o)
			}
		case 3:
			if o.Count != 1 || o.Weight != 1 || o.Seconds != 1.0 {
				t.Fatalf("alg 3 observation %+v", o)
			}
		default:
			t.Fatalf("unexpected algorithm %d", o.Algorithm)
		}
	}
	if st.Size() != 1 {
		t.Fatalf("size %d", st.Size())
	}
	// A different expression or a distant instance sees nothing.
	if obs := st.Near("GLS", inst, 0.01); len(obs) != 0 {
		t.Fatalf("cross-expression leak: %v", obs)
	}
	if obs := st.Near("AATB", expr.Instance{8, 51, 76}, 0.01); len(obs) != 0 {
		t.Fatalf("distant instance matched: %v", obs)
	}
}

// TestStoreDecayHalvesAtHalfLife is the satellite pin: with a one-hour
// half-life, a record's weight halves after exactly one hour, quarters
// after two, and the mean is unchanged (decay reweights evidence, it
// does not re-time it).
func TestStoreDecayHalvesAtHalfLife(t *testing.T) {
	st, now := frozenStore(16, time.Hour)
	inst := expr.Instance{100, 200, 300}
	st.Add("AATB", inst, 1, 2.0)

	obs := st.Near("AATB", inst, 0.01)
	if len(obs) != 1 || obs[0].Weight != 1.0 {
		t.Fatalf("fresh observation %+v", obs)
	}

	*now += 3600
	obs = st.Near("AATB", inst, 0.01)
	if obs[0].Weight != 0.5 {
		t.Fatalf("after one half-life weight = %v, want exactly 0.5", obs[0].Weight)
	}
	if obs[0].Seconds != 2.0 || obs[0].Count != 1 {
		t.Fatalf("decay changed the evidence: %+v", obs[0])
	}

	*now += 3600
	obs = st.Near("AATB", inst, 0.01)
	if obs[0].Weight != 0.25 {
		t.Fatalf("after two half-lives weight = %v, want exactly 0.25", obs[0].Weight)
	}
}

// TestStoreDecayedMeanFavoursFreshEvidence: a stale slow measurement
// decayed through several half-lives is outvoted by one fresh fast
// measurement, even though the raw count is 1-1.
func TestStoreDecayedMeanFavoursFreshEvidence(t *testing.T) {
	st, now := frozenStore(16, time.Hour)
	inst := expr.Instance{100, 200, 300}
	st.Add("AATB", inst, 1, 10.0) // stale measurement: slow

	*now += 3 * 3600 // three half-lives: stale weight 1/8
	st.Add("AATB", inst, 1, 1.0)

	obs := st.Near("AATB", inst, 0.01)
	if len(obs) != 1 {
		t.Fatalf("observations %v", obs)
	}
	// mean = (0.125*10 + 1*1) / 1.125 = 2.0
	if got := obs[0].Seconds; math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("blended mean %v, want 2.0 (fresh evidence dominating)", got)
	}
	if obs[0].Count != 2 {
		t.Fatalf("raw count %d", obs[0].Count)
	}
}

func TestStoreNoDecayWithoutHalfLife(t *testing.T) {
	st, now := frozenStore(16, 0)
	inst := expr.Instance{10, 20, 30}
	st.Add("AATB", inst, 1, 1.0)
	*now += 1e9
	obs := st.Near("AATB", inst, 0.01)
	if obs[0].Weight != 1.0 {
		t.Fatalf("weight decayed without a half-life: %v", obs[0].Weight)
	}
}

func TestStoreBoundedEviction(t *testing.T) {
	st, _ := frozenStore(4, 0)
	for i := 0; i < 10; i++ {
		st.Add("AATB", expr.Instance{20 + i, 514, 768}, 1, 1e-3)
	}
	if st.Size() != 4 {
		t.Fatalf("size %d, want the 4-record bound", st.Size())
	}
	if obs := st.Near("AATB", expr.Instance{20, 514, 768}, 0.01); len(obs) != 0 {
		t.Fatalf("evicted record still observable: %v", obs)
	}
	if obs := st.Near("AATB", expr.Instance{29, 514, 768}, 0.01); len(obs) == 0 {
		t.Fatal("recent record missing")
	}
}
