package outcomes

import (
	"math"
	"strings"
	"testing"
	"time"

	"lamb/internal/expr"
)

func TestStoreTracksWelfordVariance(t *testing.T) {
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	for _, s := range []float64{1.0, 2.0, 3.0} {
		st.Add("AATB", inst, 2, s)
	}
	obs := st.Near("AATB", inst, 0.01)
	if len(obs) != 1 {
		t.Fatalf("observations %v", obs)
	}
	o := obs[0]
	if o.Seconds != 2.0 || o.Weight != 3 {
		t.Fatalf("mean/weight %+v", o)
	}
	// Squared deviations from the running mean: M2 = (1-2)² + (2-2)² +
	// (3-2)² = 2, so the stream's variance M2/weight is 2/3.
	if math.Abs(o.M2-2.0) > 1e-12 {
		t.Fatalf("m2 %v, want 2.0", o.M2)
	}
	if v := o.M2 / o.Weight; math.Abs(v-2.0/3.0) > 1e-12 {
		t.Fatalf("variance %v, want 2/3", v)
	}
	// Identical measurements carry zero spread.
	st.Add("AATB", inst, 3, 0.5)
	st.Add("AATB", inst, 3, 0.5)
	for _, o := range st.Near("AATB", inst, 0.01) {
		if o.Algorithm == 3 && o.M2 != 0 {
			t.Fatalf("constant stream has m2 %v", o.M2)
		}
	}
}

// TestStoreVarianceInvariantUnderDecay pins the decay design: weight and
// m2 decay by the same factor, so old evidence loses mass but keeps its
// spread — the posterior never reads decayed evidence as more certain.
func TestStoreVarianceInvariantUnderDecay(t *testing.T) {
	st, now := frozenStore(16, time.Hour)
	inst := expr.Instance{100, 200, 300}
	st.Add("AATB", inst, 1, 1.0)
	st.Add("AATB", inst, 1, 3.0)
	before := st.Near("AATB", inst, 0.01)[0]
	varBefore := before.M2 / before.Weight

	*now += 2 * 3600
	after := st.Near("AATB", inst, 0.01)[0]
	if after.Weight != before.Weight/4 {
		t.Fatalf("weight %v after two half-lives, want %v", after.Weight, before.Weight/4)
	}
	if got := after.M2 / after.Weight; math.Abs(got-varBefore) > 1e-12 {
		t.Fatalf("variance drifted under decay: %v -> %v", varBefore, got)
	}
}

func TestSnapshotRoundTripsVariance(t *testing.T) {
	st, _ := frozenStore(16, 0)
	inst := expr.Instance{80, 514, 768}
	st.Add("AATB", inst, 2, 0.4)
	st.Add("AATB", inst, 2, 0.6)
	snap := st.Snapshot("p")
	if snap.SchemaVersion != 2 {
		t.Fatalf("schema version %d", snap.SchemaVersion)
	}
	m2 := snap.Records[0].Outcomes[0].M2
	if math.Abs(m2-0.02) > 1e-15 {
		t.Fatalf("snapshot m2 %v, want 0.02", m2)
	}

	restored, _ := frozenStore(16, 0)
	if n, skipped := restored.Restore(snap, nil); n != 1 || skipped != 0 {
		t.Fatalf("restore %d/%d", n, skipped)
	}
	// Restore is verbatim: the stream comes back bit-for-bit.
	obs := restored.Near("AATB", inst, 0.01)
	if len(obs) != 1 || obs[0].M2 != m2 {
		t.Fatalf("restored observation %+v", obs)
	}
}

// TestRestoreAcceptsSchemaVersion1 is the compatibility pin: a snapshot
// written before m2 existed restores cleanly, its streams reporting no
// tracked spread.
func TestRestoreAcceptsSchemaVersion1(t *testing.T) {
	v1 := `{
	 "schema_version": 1,
	 "created_unix": 1000,
	 "records": [
	  {"expr": "AATB", "instance": [80,514,768], "outcomes": [
	   {"algorithm": 2, "count": 3, "weight": 2.5, "mean": 0.0004}
	  ]}
	 ]
	}`
	snap, err := DecodeSnapshot(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("version-1 snapshot rejected: %v", err)
	}
	st, _ := frozenStore(16, 0)
	if n, _ := st.Restore(snap, nil); n != 1 {
		t.Fatalf("restored %d", n)
	}
	obs := st.Near("AATB", expr.Instance{80, 514, 768}, 0.01)
	if len(obs) != 1 {
		t.Fatalf("observations %v", obs)
	}
	if o := obs[0]; o.Weight != 2.5 || o.Seconds != 0.0004 || o.M2 != 0 {
		t.Fatalf("restored v1 observation %+v", o)
	}
}

func TestDecodeRejectsNewerSchemaAndBadM2(t *testing.T) {
	newer := `{"schema_version": 3, "created_unix": 1, "records": []}`
	if _, err := DecodeSnapshot(strings.NewReader(newer)); err == nil ||
		!strings.Contains(err.Error(), "reads 1 through 2") {
		t.Fatalf("version-3 snapshot accepted: %v", err)
	}
	badM2 := `{
	 "schema_version": 2,
	 "created_unix": 1,
	 "records": [
	  {"expr": "AATB", "instance": [8,5,7], "outcomes": [
	   {"algorithm": 1, "count": 1, "weight": 1, "mean": 0.1, "m2": -1}
	  ]}
	 ]
	}`
	if _, err := DecodeSnapshot(strings.NewReader(badM2)); err == nil ||
		!strings.Contains(err.Error(), "m2") {
		t.Fatalf("negative m2 accepted: %v", err)
	}
}
