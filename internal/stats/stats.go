// Package stats provides the small statistical toolkit used by the
// experiment drivers: medians and quantiles (the paper records the median
// of 10 repetitions), histograms for the region-thickness figures, a
// confusion matrix for Experiment 3, and running summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs (the mean of the two middle elements
// for even lengths). It panics on an empty slice and does not modify xs.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		panic("stats: median of empty slice")
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// Quantile returns the q-quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It panics on an empty slice or
// q outside [0, 1] and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	tmp := append([]float64(nil), xs...)
	sort.Float64s(tmp)
	pos := q * float64(len(tmp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return tmp[lo]
	}
	frac := pos - float64(lo)
	return tmp[lo]*(1-frac) + tmp[hi]*frac
}

// Summary holds running aggregate statistics.
type Summary struct {
	N          int
	Min, Max   float64
	sum, sumSq float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.N == 0 || x < s.Min {
		s.Min = x
	}
	if s.N == 0 || x > s.Max {
		s.Max = x
	}
	s.N++
	s.sum += x
	s.sumSq += x * x
}

// Mean returns the mean of the added values (0 for an empty summary).
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return s.sum / float64(s.N)
}

// StdDev returns the population standard deviation (0 for fewer than two
// values).
func (s *Summary) StdDev() float64 {
	if s.N < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.N) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Histogram counts values into equal-width bins over [Lo, Hi]; values
// outside the range are clamped into the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width bins on [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v, %v] with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts x into its bin.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of added values.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// ConfusionMatrix accumulates binary classification outcomes, in the
// layout of the paper's Tables 1 and 2 (actual in rows, predicted in
// columns).
type ConfusionMatrix struct {
	TN, FP, FN, TP int
}

// Add records one (actual, predicted) outcome.
func (c *ConfusionMatrix) Add(actual, predicted bool) {
	switch {
	case actual && predicted:
		c.TP++
	case actual && !predicted:
		c.FN++
	case !actual && predicted:
		c.FP++
	default:
		c.TN++
	}
}

// Total returns the number of recorded outcomes.
func (c *ConfusionMatrix) Total() int { return c.TN + c.FP + c.FN + c.TP }

// Recall returns TP/(TP+FN): the fraction of actual anomalies that were
// predicted (the paper's "x% of the anomalies could have been
// predicted"). It returns 0 when there are no actual positives.
func (c *ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Precision returns TP/(TP+FP): the fraction of predicted anomalies that
// were actual (the paper's "x% of the predicted anomalies were actual").
// It returns 0 when there are no predicted positives.
func (c *ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Accuracy returns (TP+TN)/Total, or 0 for an empty matrix.
func (c *ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// String renders the matrix in the paper's table layout.
func (c *ConfusionMatrix) String() string {
	return fmt.Sprintf(
		"            Predicted\n"+
			"            No      Yes     Total\n"+
			"Actual No   %-7d %-7d %d\n"+
			"       Yes  %-7d %-7d %d\n"+
			"       Total %-6d %-7d %d\n",
		c.TN, c.FP, c.TN+c.FP,
		c.FN, c.TP, c.FN+c.TP,
		c.TN+c.FN, c.FP+c.TP, c.Total())
}
