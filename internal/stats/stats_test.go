package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lamb/internal/xrand"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-1, -5, 0}, -1},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestMedianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Median(nil)
}

func TestMedianBetweenMinAndMaxProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := rng.IntRange(1, 30)
		xs := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := Median(xs)
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	if Quantile(xs, 0) != 0 || Quantile(xs, 1) != 4 || Quantile(xs, 0.5) != 2 {
		t.Fatal("basic quantiles wrong")
	}
	if got := Quantile(xs, 0.25); got != 1 {
		t.Fatalf("q25 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.75); got != 1.75 {
		t.Fatalf("interpolated quantile = %v, want 1.75", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty summary should be zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", s.StdDev())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// -3 clamps into bin 0; 42 clamps into bin 4.
	if h.Counts[0] != 3 { // 0, 1.9, -3
		t.Fatalf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 42
		t.Fatalf("bin 4 = %d, want 2", h.Counts[4])
	}
	if h.BinCenter(0) != 1 || h.BinCenter(4) != 9 {
		t.Fatalf("bin centers %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestConfusionMatrix(t *testing.T) {
	var c ConfusionMatrix
	// Reproduce the paper's Table 1 counts.
	c.TN, c.FP, c.FN, c.TP = 7202, 656, 1290, 15839
	if c.Total() != 24987 {
		t.Fatalf("total = %d, want 24987", c.Total())
	}
	if r := c.Recall(); math.Abs(r-0.9247) > 0.001 {
		t.Fatalf("recall = %v, want ≈0.925 (paper: ~92%%)", r)
	}
	if p := c.Precision(); math.Abs(p-0.9602) > 0.001 {
		t.Fatalf("precision = %v, want ≈0.960 (paper: ~96%%)", p)
	}
	if a := c.Accuracy(); a <= 0.9 || a >= 1 {
		t.Fatalf("accuracy = %v", a)
	}
}

func TestConfusionMatrixAdd(t *testing.T) {
	var c ConfusionMatrix
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, true)
	c.Add(false, false)
	if c.TP != 1 || c.FN != 1 || c.FP != 1 || c.TN != 1 {
		t.Fatalf("matrix = %+v", c)
	}
	s := c.String()
	if !strings.Contains(s, "Predicted") || !strings.Contains(s, "Actual") {
		t.Fatalf("String = %q", s)
	}
}

func TestConfusionMatrixEmptyRates(t *testing.T) {
	var c ConfusionMatrix
	if c.Recall() != 0 || c.Precision() != 0 || c.Accuracy() != 0 {
		t.Fatal("empty matrix rates should be 0")
	}
}
