// Kernel efficiency profiles (paper Figure 1) on both backends: the
// calibrated simulated machine across the full size range, and the
// repository's own pure-Go BLAS at small sizes — demonstrating that the
// measured backend exhibits the same qualitative structure (ramp,
// plateau, GEMM above SYRK above SYMM).
//
// Run with:
//
//	go run ./examples/kernelprofile
package main

import (
	"fmt"

	"lamb"
)

func main() {
	kinds := []lamb.KernelKind{lamb.GEMM, lamb.SYRK, lamb.SYMM}

	fmt.Println("simulated machine (calibrated to the paper's Figure 1):")
	simTimer := lamb.NewSimTimer()
	sizes := []int{50, 100, 200, 400, 800, 1600, 3000}
	printCurves(simTimer, kinds, sizes)

	fmt.Println()
	fmt.Println("measured pure-Go BLAS (3 reps, small sizes):")
	mTimer := lamb.NewTimer(lamb.NewMeasuredExecutor())
	mTimer.Reps = 3
	printCurves(mTimer, kinds, []int{32, 64, 128, 256, 384})
	fmt.Println()
	fmt.Println("efficiency is relative to each backend's own peak; both show the")
	fmt.Println("ramp-and-plateau shape and kernel ordering the paper reports.")
}

func printCurves(t *lamb.Timer, kinds []lamb.KernelKind, sizes []int) {
	curves := make([][]lamb.CurvePoint, len(kinds))
	for i, k := range kinds {
		curves[i] = lamb.EfficiencyCurve(t, k, sizes)
	}
	fmt.Printf("  %6s", "size")
	for _, k := range kinds {
		fmt.Printf("  %6s", k)
	}
	fmt.Println()
	for j, s := range sizes {
		fmt.Printf("  %6d", s)
		for i := range kinds {
			fmt.Printf("  %6.3f", curves[i][j].Efficiency)
		}
		fmt.Println()
	}
}
