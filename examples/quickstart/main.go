// Quickstart: enumerate the algorithms of the matrix chain ABCD, measure
// them on the simulated machine, and classify the instance as the paper
// does — in under a minute of reading.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"lamb"
)

func main() {
	// An anomalous instance of X := A·B·C·D on the calibrated simulated
	// machine (found by `lamb exp1 -expr chain`). The paper's own example
	// anomalies live at different coordinates — anomaly locations are a
	// property of the machine, which is the paper's point.
	inst := lamb.Instance{761, 1063, 365, 229, 245}
	chain := lamb.ChainABCD()

	// One expression, six mathematically equivalent algorithms.
	algs := chain.Algorithms(inst)
	fmt.Printf("expression %s, instance %v: %d algorithms\n\n", chain.Name(), inst, len(algs))

	// Measure every algorithm with the paper's protocol: median of 10
	// repetitions, cache flushed before each.
	timer := lamb.NewSimTimer()
	runner := lamb.NewRunner(chain, timer, 0.10)
	res := runner.Evaluate(inst)

	for i, a := range algs {
		fmt.Printf("  algorithm %d: %-34s %12.0f FLOPs  %8.2f ms\n",
			a.Index, a.Name, res.Flops[i], 1e3*res.Times[i])
	}

	// The paper's question: is a minimum-FLOPs algorithm among the
	// fastest?
	cl := res.Class
	fmt.Printf("\ncheapest algorithms: %v (by FLOP count)\n", plusOne(cl.CheapestSet))
	fmt.Printf("fastest algorithms:  %v (by measured time)\n", plusOne(cl.FastestSet))
	if cl.Anomaly {
		fmt.Printf("\nANOMALY: the fastest algorithm is %.1f%% faster than the best "+
			"minimum-FLOPs algorithm,\nwhile the cheapest needs %.1f%% fewer FLOPs "+
			"than the fastest.\n", 100*cl.TimeScore, 100*cl.FlopScore)
		fmt.Println("FLOP count alone would have picked a slow algorithm here.")
	} else {
		fmt.Println("\nno anomaly: minimising FLOPs also picked a fastest algorithm.")
	}
}

// plusOne converts 0-based indices to the paper's 1-based numbering.
func plusOne(xs []int) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = x + 1
	}
	return out
}
