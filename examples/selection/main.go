// Algorithm selection: the paper's conclusion conjectures that FLOP
// counts combined with kernel performance profiles select better
// algorithms than FLOP counts alone. This example measures the regret of
// the two discriminants (and the measuring oracle) on random AAᵀB
// instances.
//
// Run with:
//
//	go run ./examples/selection
package main

import (
	"fmt"

	"lamb"
)

func main() {
	timer := lamb.NewSimTimer()

	// MinPredicted needs kernel performance profiles: benchmark each
	// kernel on an 8×8×8 geometric grid over the paper's size range.
	fmt.Println("benchmarking kernel profiles (8^3 grid per kernel)...")
	profiles := lamb.MeasureProfiles(timer, 8)

	strategies := []lamb.Strategy{
		lamb.MinFlops{},                       // Linnea / Armadillo / Julia
		lamb.MinPredicted{Profiles: profiles}, // the paper's proposal
		lamb.Oracle{Timer: timer},             // exhaustive measurement
	}
	reports := lamb.EvaluateStrategies(lamb.AATB(), timer, strategies, lamb.SelectionConfig{
		Box:       lamb.PaperBox(3),
		Instances: 200,
		Seed:      7,
	})

	fmt.Printf("\n%d random AAᵀB instances in the paper's search space:\n\n", 200)
	for _, r := range reports {
		fmt.Printf("  %s\n", r)
	}
	mf, mp := reports[0], reports[1]
	if mp.Regret.Mean() < mf.Regret.Mean() {
		saved := 1 - mp.Regret.Mean()/mf.Regret.Mean()
		fmt.Printf("\nprofiles + FLOPs removed %.0f%% of the FLOPs-only regret — the\n", 100*saved)
		fmt.Println("quantitative form of the paper's concluding conjecture.")
	}
}
