// Command irbuilder demonstrates the expression-IR builder API: define
// a new expression as an operand tree, let the generic enumerator
// derive its algorithm set, and run the anomaly study on it — no
// hand-coded algorithm lists anywhere.
//
// The expression here is the Gram-chain hybrid X := A·Aᵀ·B·C (also
// available as the built-in "aatbc"); change the tree and everything
// downstream follows.
package main

import (
	"fmt"
	"log"

	"lamb"
)

func main() {
	a := lamb.Operand("A", 0, 1)
	b := lamb.Operand("B", 0, 2)
	c := lamb.Operand("C", 2, 3)
	e, err := lamb.DefineExpression("my-aatbc", 4, lamb.Mul(a, lamb.Transpose(a), b, c))
	if err != nil {
		log.Fatal(err)
	}

	inst := lamb.Instance{100, 150, 200, 250}
	algs := e.Algorithms(inst)
	fmt.Printf("%s at %v: %d generated algorithms\n", e.Name(), inst, len(algs))
	for _, alg := range algs[:3] {
		fmt.Printf("  %d: %s  (%.0f FLOPs)\n", alg.Index, alg.Name, alg.Flops())
	}
	fmt.Println("  ...")

	// The generated set plugs straight into the paper's experiments.
	runner := lamb.NewRunner(e, lamb.NewSimTimer(), 0.10)
	res := runner.Evaluate(inst)
	fmt.Printf("cheapest set %v, fastest set %v, anomaly: %v\n",
		res.Class.CheapestSet, res.Class.FastestSet, res.Class.Anomaly)

	exp1 := lamb.RunExperiment1(runner, lamb.Exp1Config{
		Box:             lamb.PaperBox(e.Arity()),
		TargetAnomalies: 5,
		MaxSamples:      2000,
		Seed:            42,
	})
	fmt.Printf("experiment 1: %d samples, %d distinct anomalies, abundance %.1f%%\n",
		exp1.Samples, len(exp1.Anomalies), 100*exp1.Abundance)
}
