// Matrix chain deep-dive: the general n-term chain enumerator, the
// classic dynamic-programming baseline, numerical equivalence of all
// algorithms on the real pure-Go BLAS, and a traversal of an anomalous
// region in the style of the paper's Figure 8.
//
// Run with:
//
//	go run ./examples/matrixchain
package main

import (
	"fmt"

	"lamb"
)

func main() {
	// --- Part 1: a 6-term chain has 5! = 120 evaluation orders. ---------
	chain := lamb.NewChain(6)
	inst := lamb.Instance{90, 700, 40, 250, 30, 500, 120}
	algs := chain.Algorithms(inst)
	fmt.Printf("chain of %d terms, instance %v: %d algorithms\n", 6, inst, len(algs))

	// The DP solves the ordering problem in O(n³); the enumerated minimum
	// must agree with it.
	best := algs[0]
	for _, a := range algs[1:] {
		if a.Flops() < best.Flops() {
			best = a
		}
	}
	dp, tree := lamb.MinFlopsParenthesisation([]int(inst))
	fmt.Printf("cheapest enumerated: %-52s %.0f FLOPs\n", best.Name, best.Flops())
	fmt.Printf("DP optimum:          %-52s %.0f FLOPs\n", tree, dp)
	if best.Flops() != dp {
		panic("enumeration disagrees with DP — this is a bug")
	}

	// --- Part 2: all algorithms compute the same matrix. ----------------
	// Evaluate three algorithms of a small chain on the pure-Go BLAS.
	small := lamb.Instance{12, 9, 15, 7, 11}
	sAlgs := lamb.ChainABCD().Algorithms(small)
	inputs := map[string]*lamb.Matrix{
		"A": lamb.NewRandomMatrix(12, 9, 1),
		"B": lamb.NewRandomMatrix(9, 15, 2),
		"C": lamb.NewRandomMatrix(15, 7, 3),
		"D": lamb.NewRandomMatrix(7, 11, 4),
	}
	ref := lamb.EvaluateAlgorithm(&sAlgs[0], inputs)
	for i := range sAlgs[1:] {
		got := lamb.EvaluateAlgorithm(&sAlgs[i+1], inputs)
		var maxDiff float64
		for r := 0; r < ref.Rows; r++ {
			for c := 0; c < ref.Cols; c++ {
				if d := abs(ref.At(r, c) - got.At(r, c)); d > maxDiff {
					maxDiff = d
				}
			}
		}
		fmt.Printf("algorithm %d vs 1: max |diff| = %.2e\n", i+2, maxDiff)
	}

	// --- Part 3: walk through an anomalous region (Figure 8 style). -----
	// Traverse d2 through an anomaly of the simulated machine and print,
	// for each step, which algorithm is cheapest and which is fastest.
	timer := lamb.NewSimTimer()
	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.05)
	origin := lamb.Instance{761, 1063, 365, 229, 245}
	fmt.Printf("\ntraversing d2 through %v (threshold 5%%):\n", origin)
	fmt.Println("   d2   cheapest  fastest  time-score  anomaly")
	for d2 := 165; d2 <= 665; d2 += 50 {
		inst := origin.Clone()
		inst[2] = d2
		res := runner.Evaluate(inst)
		mark := ""
		if res.Class.Anomaly {
			mark = "  <== anomaly"
		}
		fmt.Printf("  %4d   alg %d     alg %d    %5.1f%%%s\n",
			d2, res.Class.CheapestSet[0]+1, res.Class.FastestSet[0]+1,
			100*res.Class.TimeScore, mark)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
