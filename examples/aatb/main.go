// AAᵀB anomaly hunt: a miniature version of the paper's Experiment 1 and
// Experiment 2 on the expression X := A·Aᵀ·B, where anomalies are
// abundant (the paper reports 9.7% of the search space).
//
// Run with:
//
//	go run ./examples/aatb
package main

import (
	"fmt"

	"lamb"
)

func main() {
	aatb := lamb.AATB()
	timer := lamb.NewSimTimer()

	// Experiment 1 (miniature): random search until 25 anomalies are
	// found at the paper's 10% time-score threshold.
	runner := lamb.NewRunner(aatb, timer, 0.10)
	res := lamb.RunExperiment1(runner, lamb.Exp1Config{
		Box:             lamb.PaperBox(3),
		TargetAnomalies: 25,
		MaxSamples:      5000,
		Seed:            2022,
	})
	fmt.Printf("random search: %d samples, %d anomalies (abundance %.1f%%)\n\n",
		res.Samples, len(res.Anomalies), 100*res.Abundance)

	fmt.Println("the five worst anomalies found:")
	worst := append([]lamb.InstanceResult(nil), res.Anomalies...)
	for i := 0; i < len(worst); i++ {
		for j := i + 1; j < len(worst); j++ {
			if worst[j].Class.TimeScore > worst[i].Class.TimeScore {
				worst[i], worst[j] = worst[j], worst[i]
			}
		}
	}
	for _, a := range worst[:min(5, len(worst))] {
		fmt.Printf("  %-18v cheapest alg %d, fastest alg %d: %4.1f%% faster with %4.1f%% more FLOPs\n",
			a.Inst, a.Class.CheapestSet[0]+1, a.Class.FastestSet[0]+1,
			100*a.Class.TimeScore, 100*a.Class.FlopScore)
	}

	// Experiment 2 (miniature): how far does the first anomaly's region
	// extend in each dimension?
	runner5 := lamb.NewRunner(aatb, timer, 0.05)
	exp2 := lamb.RunExperiment2(runner5, []lamb.Instance{res.Anomalies[0].Inst},
		lamb.DefaultExp2Config(lamb.PaperBox(3)))
	fmt.Printf("\nregion around %v (5%% threshold):\n", res.Anomalies[0].Inst)
	for _, ln := range exp2.Lines {
		fmt.Printf("  d%d: [%4d, %4d]  thickness %4d  (%d samples)\n",
			ln.Dim, ln.BoundaryLo, ln.BoundaryHi, ln.Thickness, len(ln.Samples))
	}
	fmt.Println("\nnote how the region is much thinner in d0 than in d1/d2 —")
	fmt.Println("the paper observes exactly this (Figure 10): SYRK's efficiency")
	fmt.Println("gap closes as d0 grows, ending the anomaly.")
}
