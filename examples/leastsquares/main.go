// Least squares beyond the paper: the paper conjectures (§5) that more
// complex expressions with more kernels will have more anomalies. This
// example studies X := (A·Aᵀ + R)⁻¹·A·B — a regularised normal-equations
// solve whose four algorithms mix six kernel kinds (SYRK, GEMM, triangle
// add, Cholesky, and two triangular solves) — and compares its anomaly
// abundance against the paper's two expressions.
//
// Run with:
//
//	go run ./examples/leastsquares
package main

import (
	"fmt"

	"lamb"
)

func main() {
	lstsq := lamb.LstSq()
	inst := lamb.Instance{300, 900, 120}
	algs := lstsq.Algorithms(inst)

	fmt.Printf("X := (A·Aᵀ + R)⁻¹·A·B, instance %v:\n\n", inst)
	for _, a := range algs {
		fmt.Printf("  algorithm %d (%.0f MFLOPs):\n    %s\n", a.Index, a.Flops()/1e6, a.Name)
	}

	// Verify numerically that all four algorithms agree (on the real
	// pure-Go BLAS, with a small instance).
	small := lamb.Instance{25, 18, 6}
	sAlgs := lstsq.Algorithms(small)
	inputs := map[string]*lamb.Matrix{
		"A": lamb.NewRandomMatrix(25, 18, 1),
		"B": lamb.NewRandomMatrix(18, 6, 2),
		"R": spd(25),
	}
	ref := lamb.EvaluateAlgorithm(&sAlgs[0], inputs)
	maxDiff := 0.0
	for i := 1; i < len(sAlgs); i++ {
		got := lamb.EvaluateAlgorithm(&sAlgs[i], inputs)
		for r := 0; r < ref.Rows; r++ {
			for c := 0; c < ref.Cols; c++ {
				d := ref.At(r, c) - got.At(r, c)
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
		}
	}
	fmt.Printf("\nall four algorithms agree numerically (max diff %.2e)\n\n", maxDiff)

	// The conjecture test: anomaly abundance across the three expressions.
	timer := lamb.NewSimTimer()
	fmt.Println("anomaly abundance at the paper's 10% threshold (1500 samples each):")
	for _, e := range []lamb.Expression{lamb.ChainABCD(), lamb.AATB(), lstsq} {
		runner := lamb.NewRunner(e, timer, 0.10)
		res := lamb.RunExperiment1(runner, lamb.Exp1Config{
			Box:             lamb.PaperBox(e.Arity()),
			TargetAnomalies: 1 << 30,
			MaxSamples:      1500,
			Seed:            9,
		})
		probe := make(lamb.Instance, e.Arity())
		for i := range probe {
			probe[i] = 100
		}
		fmt.Printf("  %-11s %d algorithms, %5.2f%% anomalous\n",
			e.Name(), len(e.Algorithms(probe)), 100*res.Abundance)
	}
	fmt.Println("\nthe richer kernel mix multiplies the GEMM-only chain's abundance,")
	fmt.Println("though the algorithms' shared factorisation tail damps time-score")
	fmt.Println("differences relative to AAᵀB — expression structure matters, not")
	fmt.Println("just kernel variety.")
}

func spd(n int) *lamb.Matrix {
	g := lamb.NewRandomMatrix(n, n, 3)
	s := lamb.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var acc float64
			for p := 0; p < n; p++ {
				acc += g.At(i, p) * g.At(j, p)
			}
			if i == j {
				acc += float64(n)
			}
			s.Set(i, j, acc)
		}
	}
	return s
}
