module lamb

go 1.24
