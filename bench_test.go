// Benchmarks regenerating every table and figure of the paper at reduced
// scale, plus the ablations called out in DESIGN.md. Each benchmark runs
// a deterministic miniature of the corresponding experiment and attaches
// the headline quantity (abundance, recall, regret, …) as a custom
// metric, so `go test -bench=.` doubles as a smoke reproduction.
//
// The full paper-scale runs are produced by `go run ./cmd/lamb all
// -scale paper`; EXPERIMENTS.md records the paper-vs-measured comparison.
package lamb_test

import (
	"io"
	"sync"
	"testing"

	"lamb"
	"lamb/internal/report"
)

// benchTimer returns a fresh simulated timer with the paper's protocol.
func benchTimer() *lamb.Timer { return lamb.NewSimTimer() }

// ---------------------------------------------------------------------
// Figure 1: kernel efficiency vs size.

func BenchmarkFigure1KernelEfficiency(b *testing.B) {
	timer := benchTimer()
	sizes := []int{50, 100, 200, 400, 800, 1600, 3000}
	var last []lamb.CurvePoint
	for i := 0; i < b.N; i++ {
		for _, k := range []lamb.KernelKind{lamb.GEMM, lamb.SYRK, lamb.SYMM} {
			last = lamb.EfficiencyCurve(timer, k, sizes)
		}
	}
	b.ReportMetric(last[len(last)-1].Efficiency, "plateau-eff")
}

// ---------------------------------------------------------------------
// Figures 3 and 5: algorithm enumeration.

func BenchmarkEnumerateChain(b *testing.B) {
	inst := lamb.Instance{331, 279, 338, 854, 427}
	chain := lamb.ChainABCD()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(chain.Algorithms(inst))
	}
	b.ReportMetric(float64(n), "algorithms")
}

func BenchmarkEnumerateAATB(b *testing.B) {
	inst := lamb.Instance{227, 260, 549}
	aatb := lamb.AATB()
	n := 0
	for i := 0; i < b.N; i++ {
		n = len(aatb.Algorithms(inst))
	}
	b.ReportMetric(float64(n), "algorithms")
}

// ---------------------------------------------------------------------
// Experiment 1 (Figures 6 and 9): random search for anomalies.

func exp1Mini(e lamb.Expression, maxSamples int) lamb.Exp1Result {
	runner := lamb.NewRunner(e, benchTimer(), 0.10)
	return lamb.RunExperiment1(runner, lamb.Exp1Config{
		Box:             lamb.PaperBox(e.Arity()),
		TargetAnomalies: 1 << 30,
		MaxSamples:      maxSamples,
		Seed:            42,
	})
}

func BenchmarkExp1Chain(b *testing.B) {
	var res lamb.Exp1Result
	for i := 0; i < b.N; i++ {
		res = exp1Mini(lamb.ChainABCD(), 2000)
	}
	b.ReportMetric(100*res.Abundance, "abundance-%")
}

func BenchmarkExp1AATB(b *testing.B) {
	var res lamb.Exp1Result
	for i := 0; i < b.N; i++ {
		res = exp1Mini(lamb.AATB(), 800)
	}
	b.ReportMetric(100*res.Abundance, "abundance-%")
}

// ---------------------------------------------------------------------
// Experiment 2 (Figures 7 and 10): regions around anomalies. The
// anomaly origins are discovered once and shared across iterations.

var (
	originsOnce  sync.Once
	chainOrigins []lamb.Instance
	aatbOrigins  []lamb.Instance
)

func origins(b *testing.B) ([]lamb.Instance, []lamb.Instance) {
	originsOnce.Do(func() {
		for _, a := range exp1Mini(lamb.ChainABCD(), 6000).Anomalies {
			chainOrigins = append(chainOrigins, a.Inst)
		}
		for _, a := range exp1Mini(lamb.AATB(), 400).Anomalies {
			aatbOrigins = append(aatbOrigins, a.Inst)
		}
	})
	if len(chainOrigins) == 0 || len(aatbOrigins) == 0 {
		b.Fatal("no anomalies found for region benchmarks")
	}
	return chainOrigins, aatbOrigins
}

func exp2Mini(e lamb.Expression, anoms []lamb.Instance, cap int) lamb.Exp2Result {
	runner := lamb.NewRunner(e, benchTimer(), 0.05)
	if len(anoms) > cap {
		anoms = anoms[:cap]
	}
	return lamb.RunExperiment2(runner, anoms, lamb.DefaultExp2Config(lamb.PaperBox(e.Arity())))
}

func BenchmarkExp2Chain(b *testing.B) {
	chain, _ := origins(b)
	var res lamb.Exp2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = exp2Mini(lamb.ChainABCD(), chain, 3)
	}
	b.ReportMetric(float64(res.TotalSamples), "line-samples")
}

func BenchmarkExp2AATB(b *testing.B) {
	_, aatb := origins(b)
	var res lamb.Exp2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = exp2Mini(lamb.AATB(), aatb, 5)
	}
	b.ReportMetric(float64(res.TotalSamples), "line-samples")
}

// Figures 8 and 11: per-algorithm efficiency rendered along the lines.

func benchLines(b *testing.B, e lamb.Expression, anoms []lamb.Instance) {
	res := exp2Mini(e, anoms, 2)
	peak := benchTimer().Exec.Peak()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for li := range res.Lines {
			ln := &res.Lines[li]
			if len(ln.Samples) == 0 {
				continue
			}
			nAlgs := len(ln.Samples[0].Res.Times)
			xs := make([]int, len(ln.Samples))
			for ai := 0; ai < nAlgs; ai++ {
				ys := make([]float64, len(ln.Samples))
				for si, s := range ln.Samples {
					xs[si] = s.Coord
					ys[si] = s.Res.Flops[ai] / (s.Res.Times[ai] * peak)
				}
				if err := report.Line(io.Discard, xs, ys, 0, 1, 8, "alg"); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(float64(len(res.Lines)), "lines")
}

func BenchmarkExp2ChainLines(b *testing.B) {
	chain, _ := origins(b)
	benchLines(b, lamb.ChainABCD(), chain)
}

func BenchmarkExp2AATBLines(b *testing.B) {
	_, aatb := origins(b)
	benchLines(b, lamb.AATB(), aatb)
}

// ---------------------------------------------------------------------
// Experiment 3 (Tables 1 and 2): prediction from benchmarks.

func benchExp3(b *testing.B, e lamb.Expression, anoms []lamb.Instance) {
	exp2 := exp2Mini(e, anoms, 3)
	runner := lamb.NewRunner(e, benchTimer(), 0.05)
	var res lamb.Exp3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = lamb.RunExperiment3(runner, exp2, lamb.Exp3Config{Threshold: 0.05})
	}
	b.ReportMetric(100*res.Confusion.Recall(), "recall-%")
	b.ReportMetric(100*res.Confusion.Precision(), "precision-%")
}

func BenchmarkExp3Chain(b *testing.B) {
	chain, _ := origins(b)
	benchExp3(b, lamb.ChainABCD(), chain)
}

func BenchmarkExp3AATB(b *testing.B) {
	_, aatb := origins(b)
	benchExp3(b, lamb.AATB(), aatb)
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md): design-choice studies on the machine model.

// BenchmarkAblationNoInterKernelCache removes the inter-kernel cache
// effects: Experiment 3's prediction should become near-perfect for the
// chain, quantifying how much of the misprediction warm caches explain.
func BenchmarkAblationNoInterKernelCache(b *testing.B) {
	cfg := lamb.DefaultMachineConfig()
	cfg.DisableWarmCache = true
	cfg.BenchBias = 0
	for k := range cfg.Kernels {
		cfg.Kernels[k].BenchBiasMean = 0
	}
	timer := lamb.NewTimer(lamb.NewSimExecutorWith(cfg))
	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.10)
	res := lamb.RunExperiment1(runner, lamb.Exp1Config{
		Box: lamb.PaperBox(5), TargetAnomalies: 1 << 30, MaxSamples: 6000, Seed: 42,
	})
	var origins []lamb.Instance
	for _, a := range res.Anomalies {
		origins = append(origins, a.Inst)
	}
	runner5 := lamb.NewRunner(lamb.ChainABCD(), timer, 0.05)
	var out lamb.Exp3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp2 := lamb.RunExperiment2(runner5, origins, lamb.DefaultExp2Config(lamb.PaperBox(5)))
		out = lamb.RunExperiment3(runner5, exp2, lamb.Exp3Config{Threshold: 0.05})
	}
	b.ReportMetric(100*out.Confusion.Recall(), "recall-%")
}

// BenchmarkAblationSmoothEfficiency removes variant steps and the
// partition sawtooth: chain anomalies (driven by efficiency texture)
// should largely disappear.
func BenchmarkAblationSmoothEfficiency(b *testing.B) {
	cfg := lamb.DefaultMachineConfig()
	cfg.DisableVariantSteps = true
	timer := lamb.NewTimer(lamb.NewSimExecutorWith(cfg))
	runner := lamb.NewRunner(lamb.ChainABCD(), timer, 0.10)
	var res lamb.Exp1Result
	for i := 0; i < b.N; i++ {
		res = lamb.RunExperiment1(runner, lamb.Exp1Config{
			Box: lamb.PaperBox(5), TargetAnomalies: 1 << 30, MaxSamples: 2000, Seed: 42,
		})
	}
	b.ReportMetric(100*res.Abundance, "abundance-%")
}

// BenchmarkAblationThresholdSweep reports AAᵀB abundance as the
// time-score threshold varies — the sensitivity of the paper's headline.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	for _, th := range []struct {
		name string
		v    float64
	}{{"2.5%", 0.025}, {"5%", 0.05}, {"10%", 0.10}, {"20%", 0.20}} {
		b.Run(th.name, func(b *testing.B) {
			runner := lamb.NewRunner(lamb.AATB(), benchTimer(), th.v)
			var res lamb.Exp1Result
			for i := 0; i < b.N; i++ {
				res = lamb.RunExperiment1(runner, lamb.Exp1Config{
					Box: lamb.PaperBox(3), TargetAnomalies: 1 << 30, MaxSamples: 600, Seed: 42,
				})
			}
			b.ReportMetric(100*res.Abundance, "abundance-%")
		})
	}
}

// BenchmarkSelectionStrategies compares the FLOPs-only discriminant with
// the FLOPs+profiles discriminant (the paper's concluding conjecture).
func BenchmarkSelectionStrategies(b *testing.B) {
	timer := benchTimer()
	profiles := lamb.MeasureProfiles(timer, 6)
	strategies := []lamb.Strategy{lamb.MinFlops{}, lamb.MinPredicted{Profiles: profiles}}
	var reports []lamb.SelectionReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reports = lamb.EvaluateStrategies(lamb.AATB(), timer, strategies, lamb.SelectionConfig{
			Box: lamb.PaperBox(3), Instances: 60, Seed: 7,
		})
	}
	b.ReportMetric(100*reports[0].Regret.Mean(), "minflops-regret-%")
	b.ReportMetric(100*reports[1].Regret.Mean(), "minpred-regret-%")
}

// BenchmarkConjectureLstSq tests the paper's §5 conjecture that more
// complex, more-kernel expressions have more anomalies: the regularised
// least-squares expression mixes six kernel kinds. Its abundance should
// exceed the GEMM-only chain's by an order of magnitude (though the
// algorithms' shared factorisation tail keeps it below AAᵀB's).
func BenchmarkConjectureLstSq(b *testing.B) {
	var lstsq, chain lamb.Exp1Result
	for i := 0; i < b.N; i++ {
		lstsq = exp1Mini(lamb.LstSq(), 1500)
		chain = exp1Mini(lamb.ChainABCD(), 1500)
	}
	b.ReportMetric(100*lstsq.Abundance, "lstsq-abundance-%")
	b.ReportMetric(100*chain.Abundance, "chain-abundance-%")
}

// BenchmarkCrossMachineAnomalyOverlap quantifies the paper's portability
// claim: "A different setup will affect the performance profiles of the
// kernels, which, in turn, will translate into the disappearance of some
// anomalies and the surge of new ones." The same AAᵀB sample set is
// classified on two calibrated machines and the overlap of their anomaly
// sets reported (low overlap = anomalies are machine properties).
func BenchmarkCrossMachineAnomalyOverlap(b *testing.B) {
	run := func(cfg lamb.MachineConfig) map[string]bool {
		timer := lamb.NewTimer(lamb.NewSimExecutorWith(cfg))
		runner := lamb.NewRunner(lamb.AATB(), timer, 0.10)
		res := lamb.RunExperiment1(runner, lamb.Exp1Config{
			Box: lamb.PaperBox(3), TargetAnomalies: 1 << 30, MaxSamples: 1200, Seed: 42,
		})
		set := make(map[string]bool, len(res.Anomalies))
		for _, a := range res.Anomalies {
			set[a.Inst.String()] = true
		}
		return set
	}
	var onA, onB, both int
	for i := 0; i < b.N; i++ {
		setA := run(lamb.DefaultMachineConfig())
		setB := run(lamb.AltMachineConfig())
		onA, onB, both = len(setA), len(setB), 0
		for k := range setA {
			if setB[k] {
				both++
			}
		}
	}
	union := onA + onB - both
	if union > 0 {
		b.ReportMetric(100*float64(both)/float64(union), "jaccard-overlap-%")
	}
	b.ReportMetric(float64(onA), "anomalies-machine-A")
	b.ReportMetric(float64(onB), "anomalies-machine-B")
}

// BenchmarkParallelSpeedup measures the parallel experiment driver
// against the sequential one on the same workload.
func BenchmarkParallelSpeedup(b *testing.B) {
	cfg := lamb.Exp1Config{
		Box: lamb.PaperBox(3), TargetAnomalies: 1 << 30, MaxSamples: 600, Seed: 42,
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runner := lamb.NewRunner(lamb.AATB(), benchTimer(), 0.10)
			lamb.RunExperiment1(runner, cfg)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runner := lamb.NewRunner(lamb.AATB(), benchTimer(), 0.10)
			lamb.RunExperiment1Parallel(runner, cfg, 0x7fffffff) // capped to cores
		}
	})
}

// ---------------------------------------------------------------------
// The measured backend end-to-end: a tiny Experiment 1 timing the real
// pure-Go BLAS kernels.

func BenchmarkMeasuredBackendExp1AATB(b *testing.B) {
	timer := lamb.NewTimer(lamb.NewMeasuredExecutor())
	timer.Reps = 3
	runner := lamb.NewRunner(lamb.AATB(), timer, 0.10)
	var res lamb.Exp1Result
	for i := 0; i < b.N; i++ {
		res = lamb.RunExperiment1(runner, lamb.Exp1Config{
			Box: lamb.UniformBox(3, 16, 128), TargetAnomalies: 1 << 30, MaxSamples: 10, Seed: 42,
		})
	}
	b.ReportMetric(float64(len(res.Anomalies)), "anomalies")
}
